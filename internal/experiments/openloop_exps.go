package experiments

import (
	"fmt"
	"strings"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/regions"
	"planet/internal/simnet"
	"planet/internal/workload"
)

// F9OpenLoopSurge is the million-user stress scenario: an open-loop
// Poisson arrival process with a diurnal surge (baseline → 5× surge →
// recovery), Zipfian key popularity, and a replica scale-in/scale-out
// event in the middle of the surge (one replica crashes at peak load and
// rejoins during recovery). Two admission arms run the identical arrival
// schedule:
//
//   - static: F5's fixed policy (MinLikelihood 0.40, MaxInFlight 120),
//     tuned for the baseline rate and oblivious to the surge;
//   - adaptive: the same policy as the starting point, with the per-region
//     feedback controller adjusting the window, the likelihood bar, and
//     the speculation floor every epoch from observed goodput, abort rate,
//     and commit latency.
//
// The claim under test: when load and cluster health shift faster than any
// static tuning anticipates, the controller sheds the doomed fraction early
// and keeps the window matched to what the degraded cluster can decide —
// higher goodput at equal or lower p99 through the surge. The conservation
// ledger (injected == committed + aborted + rejected + in-flight) is
// checked at every sample in both arms.
func F9OpenLoopSurge(cfg Config) (Result, error) {
	base := float64(cfg.pick(800, 400))
	phaseDur := time.Duration(cfg.pick(2000, 600)) * time.Millisecond
	phases := []workload.RatePhase{
		{Rate: base, Dur: phaseDur},     // baseline
		{Rate: 5 * base, Dur: phaseDur}, // surge
		{Rate: base, Dur: phaseDur},     // recovery
	}
	static := planet.AdmissionPolicy{MinLikelihood: 0.40, MaxInFlight: 120}

	arms := []struct {
		name string
		pcfg planet.Config
	}{
		{"static", planet.Config{Admission: static}},
		{"adaptive", planet.Config{
			Admission: static,
			Adaptive: planet.AdaptiveAdmission{
				Enabled:   true,
				Epoch:     40 * time.Millisecond,
				TargetP99: 40 * time.Millisecond,
				AbortHigh: 0.12,
				AbortLow:  0.04,
			},
		}},
	}

	var b strings.Builder
	out := make(map[string]float64)
	fmt.Fprintf(&b, "%-10s %10s %12s %10s %10s %10s %10s\n",
		"policy", "injected", "goodput/s", "commit", "rejected", "p50-final", "p99-final")
	for _, arm := range arms {
		// The surge mutates topology mid-run (replica crash + rejoin), so
		// the cluster is built directly on the serialized virtual scheduler
		// rather than through openDB's partitioned one — global event order
		// is what makes a mid-run membership change deterministic.
		ccfg := cluster.Config{
			Topology:      regions.Five(),
			TimeScale:     cfg.scale(),
			Seed:          cfg.Seed + 83,
			VirtualTime:   !cfg.RealTime,
			EarlyAbort:    cfg.EarlyAbort,
			CommitTimeout: 30 * time.Second,
		}
		c, err := cluster.New(ccfg)
		if err != nil {
			return Result{}, err
		}
		pcfg := arm.pcfg
		pcfg.Cluster = c
		db, err := planet.Open(pcfg)
		if err != nil {
			c.Close()
			return Result{}, err
		}
		clk := c.Clock()
		scale := c.TimeScale()

		// Scale-in at peak surge, scale-out during recovery: Virginia's
		// replica crashes a third of the way into the surge window (the
		// fast path loses its fifth vote; every commit needs the remaining
		// four or the classic path) and rejoins halfway through recovery.
		// Arrivals originate from the other four regions — users in the
		// dead datacenter fail over — so the crash degrades the quorum,
		// not the driver.
		victim := regions.Virginia
		crashAt := phaseDur + phaseDur/3
		restartAt := 2*phaseDur + phaseDur/2
		var crashErr, restartErr error
		clk.AfterFunc(crashAt, func() { crashErr = c.CrashReplica(victim) })
		clk.AfterFunc(restartAt, func() { restartErr = c.RestartReplica(victim) })

		ledger := &workload.Ledger{}
		rep, err := workload.Open{
			Options: workload.Options{
				DB:       db,
				Template: workload.ReadModifyWrite{Keys: workload.NewZipfFast("f9-", 600, 1.2)},
				Regions:  []simnet.Region{regions.California, regions.Ireland, regions.Singapore, regions.Tokyo},
				Seed:     cfg.Seed + 89,
			},
			Phases:      phases,
			Batch:       time.Millisecond,
			Ledger:      ledger,
			SampleEvery: 256,
		}.Run()
		adm := db.AdmissionState(regions.California)
		c.Close()
		c.Quiesce(cfg.quiesceBudget())
		if err != nil {
			return Result{}, err
		}
		if crashErr != nil || restartErr != nil {
			return Result{}, fmt.Errorf("f9: scale event failed: crash=%v restart=%v", crashErr, restartErr)
		}
		for _, s := range ledger.Samples() {
			if err := s.Check(); err != nil {
				return Result{}, fmt.Errorf("f9 %s arm: %w", arm.name, err)
			}
		}
		final := ledger.Final()
		if final.InFlight != 0 {
			return Result{}, fmt.Errorf("f9 %s arm: %d transactions still in flight", arm.name, final.InFlight)
		}

		f := rep.Final.Summarize()
		rejFrac := float64(rep.Rejected.Load()) / float64(rep.Total())
		fmt.Fprintf(&b, "%-10s %10d %12.1f %10.3f %10.3f %10s %10s\n",
			arm.name, final.Injected, rep.GoodputPerSec(), rep.CommitRate(), rejFrac,
			wan(f.P50, scale), wan(f.P99, scale))
		out[arm.name+"_injected"] = float64(final.Injected)
		out[arm.name+"_goodput"] = rep.GoodputPerSec()
		out[arm.name+"_commit_rate"] = rep.CommitRate()
		out[arm.name+"_reject_frac"] = rejFrac
		out[arm.name+"_p50_final_ms"] = ms(f.P50, scale)
		out[arm.name+"_p95_final_ms"] = ms(f.P95, scale)
		out[arm.name+"_p99_final_ms"] = ms(f.P99, scale)
		if arm.name == "adaptive" {
			out["adaptive_epochs"] = float64(adm.Epochs)
			out["adaptive_final_max_inflight"] = float64(adm.MaxInFlight)
			out["adaptive_final_min_likelihood"] = adm.MinLikelihood
		}
	}
	return Result{Name: "F9 open-loop surge: static vs adaptive admission", Text: b.String(), Metrics: out}, nil
}
