// Package baseline implements the comparison point for PLANET's evaluation:
// the traditional blocking transaction model over the same geo-replicated
// store. A baseline client performs the same optimistic commit protocol but
// exposes none of PLANET's machinery — no progress callbacks, no commit
// likelihood, no speculation, no admission control. Commit blocks until the
// final geo-replicated decision.
//
// Experiments compare PLANET and baseline on identical clusters and
// workloads: the protocol latency is the same by construction; the
// differences PLANET claims (perceived latency, goodput under contention)
// come from the programming model and admission control.
package baseline

import (
	"fmt"
	"sort"
	"time"

	"planet/internal/cluster"
	"planet/internal/mdcc"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// Client is a blocking transaction client for one cluster.
type Client struct {
	cluster *cluster.Cluster
	mode    mdcc.Mode
}

// New returns a Client committing through the given protocol path.
func New(c *cluster.Cluster, mode mdcc.Mode) *Client {
	return &Client{cluster: c, mode: mode}
}

// Txn starts a transaction homed in region.
type Txn struct {
	client  *Client
	region  simnet.Region
	replica *mdcc.Replica
	reads   map[string]int64
	writes  map[string]txn.Op
	done    bool
}

// Begin starts a transaction in region.
func (c *Client) Begin(region simnet.Region) (*Txn, error) {
	rep := c.cluster.Replica(region)
	if rep == nil {
		return nil, fmt.Errorf("baseline: unknown region %q", region)
	}
	return &Txn{
		client:  c,
		region:  region,
		replica: rep,
		reads:   make(map[string]int64),
		writes:  make(map[string]txn.Op),
	}, nil
}

// Read returns the committed bytes of key from the local replica.
func (t *Txn) Read(key string) ([]byte, error) {
	v, ok := t.replica.ReadLocal(key)
	if !ok {
		return nil, fmt.Errorf("baseline: key %q not found", key)
	}
	t.reads[key] = v.Version
	return v.Bytes, nil
}

// ReadInt returns the committed integer value of key.
func (t *Txn) ReadInt(key string) (int64, error) {
	v, ok := t.replica.ReadLocal(key)
	if !ok {
		return 0, fmt.Errorf("baseline: key %q not found", key)
	}
	t.reads[key] = v.Version
	return v.Int, nil
}

// Set buffers a physical write.
func (t *Txn) Set(key string, value []byte) {
	ver, read := t.reads[key]
	if !read {
		if v, ok := t.replica.ReadLocal(key); ok {
			ver = v.Version
		}
		t.reads[key] = ver
	}
	t.writes[key] = txn.Op{Kind: txn.OpSet, Key: key,
		Value: append([]byte(nil), value...), ReadVersion: ver}
}

// Add buffers a commutative integer delta.
func (t *Txn) Add(key string, delta int64) {
	op := t.writes[key]
	if op.Kind == txn.OpAdd && op.Key == key {
		op.Delta += delta
		t.writes[key] = op
		return
	}
	t.writes[key] = txn.Op{Kind: txn.OpAdd, Key: key, Delta: delta}
}

// blockSink resolves a channel on decision and discards progress.
type blockSink struct {
	ch chan decided
}

type decided struct {
	committed bool
	err       error
}

// Progress implements mdcc.ProgressSink.
func (s *blockSink) Progress(mdcc.ProgressEvent) {}

// Decided implements mdcc.ProgressSink.
func (s *blockSink) Decided(_ txn.ID, committed bool, err error) {
	s.ch <- decided{committed, err}
}

// Commit blocks until the geo-replicated decision and returns the outcome.
func (t *Txn) Commit() (txn.Outcome, error) {
	if t.done {
		return txn.Outcome{}, fmt.Errorf("baseline: transaction committed twice")
	}
	t.done = true

	keys := make([]string, 0, len(t.writes))
	for k := range t.writes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ops := make([]txn.Op, 0, len(keys))
	for _, k := range keys {
		ops = append(ops, t.writes[k])
	}

	id := txn.NewID()
	start := time.Now()
	sink := &blockSink{ch: make(chan decided, 1)}
	if err := t.client.cluster.Coordinator(t.region).Submit(id, ops, t.client.mode, sink); err != nil {
		return txn.Outcome{}, err
	}
	d := <-sink.ch
	return txn.Outcome{
		ID: id, Committed: d.committed, Err: d.err,
		Submitted: start, Decided: time.Now(),
	}, nil
}
