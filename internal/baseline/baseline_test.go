package baseline

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"planet/internal/cluster"
	"planet/internal/mdcc"
	"planet/internal/regions"
	"planet/internal/simnet"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{TimeScale: 0.01, Seed: 12,
		CommitTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		c.Quiesce(2 * time.Second)
	})
	return c
}

func TestBlockingCommit(t *testing.T) {
	c := testCluster(t)
	c.SeedBytes("k", []byte("v0"))
	cl := New(c, mdcc.ModeFast)

	tx, err := cl.Begin(regions.California)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tx.Read("k")
	if err != nil || string(got) != "v0" {
		t.Fatalf("read %q err=%v", got, err)
	}
	tx.Set("k", []byte("v1"))
	o, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if !o.Committed {
		t.Fatalf("abort: %v", o.Err)
	}
	if o.Duration() <= 0 {
		t.Error("no latency measured")
	}
}

func TestBlockingConflict(t *testing.T) {
	c := testCluster(t)
	c.SeedBytes("k", []byte("v0"))
	cl := New(c, mdcc.ModeFast)

	// Two racing blind writes: at most one commits.
	var wg sync.WaitGroup
	results := make([]bool, 2)
	for i, region := range []simnet.Region{regions.California, regions.Ireland} {
		wg.Add(1)
		go func(i int, r simnet.Region) {
			defer wg.Done()
			tx, err := cl.Begin(r)
			if err != nil {
				t.Error(err)
				return
			}
			tx.Set("k", []byte{byte(i)})
			o, err := tx.Commit()
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = o.Committed
		}(i, region)
	}
	wg.Wait()
	if results[0] && results[1] {
		t.Fatal("both conflicting writes committed")
	}
}

func TestBlockingAdds(t *testing.T) {
	c := testCluster(t)
	c.SeedInt("n", 10, 0, 100)
	cl := New(c, mdcc.ModeClassic)

	tx, err := cl.Begin(regions.Tokyo)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tx.ReadInt("n")
	if err != nil || v != 10 {
		t.Fatalf("ReadInt=%d err=%v", v, err)
	}
	tx.Add("n", 5)
	tx.Add("n", 3) // accumulates
	o, err := tx.Commit()
	if err != nil || !o.Committed {
		t.Fatalf("commit: %v %v", o, err)
	}
	c.Quiesce(5 * time.Second)
	got, _ := c.Replica(regions.Tokyo).ReadLocal("n")
	if got.Int != 18 {
		t.Errorf("n=%d, want 18", got.Int)
	}
}

func TestDoubleCommit(t *testing.T) {
	c := testCluster(t)
	cl := New(c, mdcc.ModeFast)
	tx, err := cl.Begin(regions.California)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err == nil {
		t.Error("second commit accepted")
	}
}

func TestUnknownRegion(t *testing.T) {
	c := testCluster(t)
	cl := New(c, mdcc.ModeFast)
	if _, err := cl.Begin("atlantis"); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestMissingKeyRead(t *testing.T) {
	c := testCluster(t)
	cl := New(c, mdcc.ModeFast)
	tx, err := cl.Begin(regions.California)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read("ghost"); err == nil {
		t.Error("missing key read succeeded")
	}
	if _, err := tx.ReadInt("ghost"); err == nil {
		t.Error("missing key ReadInt succeeded")
	}
}

func TestRunClosed(t *testing.T) {
	c := testCluster(t)
	for i := 0; i < 8; i++ {
		c.SeedInt(keyN("acct", i), 100, 0, 1<<40)
	}
	cl := New(c, mdcc.ModeFast)
	rep, err := cl.RunClosed(c.Regions(), 4, 5, 13, func(tx *Txn, rng *rand.Rand) error {
		tx.Add(keyN("acct", rng.Intn(8)), 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed+rep.Aborted != 20 {
		t.Errorf("decided %d, want 20", rep.Committed+rep.Aborted)
	}
	if rep.CommitRate() == 0 || rep.GoodputPerSec() == 0 {
		t.Errorf("rates: commit=%v goodput=%v", rep.CommitRate(), rep.GoodputPerSec())
	}
	if rep.Latency.Count() != 20 {
		t.Errorf("latency samples=%d", rep.Latency.Count())
	}
}

func TestRunClosedValidation(t *testing.T) {
	c := testCluster(t)
	cl := New(c, mdcc.ModeFast)
	if _, err := cl.RunClosed(c.Regions(), 0, 5, 1, nil); err == nil {
		t.Error("zero clients accepted")
	}
}

func keyN(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i))
}
