package baseline

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"planet/internal/metrics"
	"planet/internal/simnet"
)

// TxnBuilder assembles one baseline transaction (mirrors workload.Template
// without depending on the PLANET API).
type TxnBuilder func(t *Txn, rng *rand.Rand) error

// RunReport aggregates a baseline run.
type RunReport struct {
	Latency   *metrics.Histogram
	Committed uint64
	Aborted   uint64
	Elapsed   time.Duration
}

// CommitRate is committed / decided.
func (r *RunReport) CommitRate() float64 {
	total := r.Committed + r.Aborted
	if total == 0 {
		return 0
	}
	return float64(r.Committed) / float64(total)
}

// GoodputPerSec is committed transactions per second of run time.
func (r *RunReport) GoodputPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Elapsed.Seconds()
}

// RunClosed drives a closed-loop blocking workload: clients × perClient
// transactions, each blocking on its final decision.
func (c *Client) RunClosed(regionList []simnet.Region, clients, perClient int, seed int64, build TxnBuilder) (*RunReport, error) {
	if clients <= 0 || perClient <= 0 {
		return nil, fmt.Errorf("baseline: clients and perClient must be positive")
	}
	report := &RunReport{Latency: metrics.NewHistogram()}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		region := regionList[i%len(regionList)]
		rng := rand.New(rand.NewSource(seed + int64(i)*104729))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				t, err := c.Begin(region)
				if err != nil {
					errs <- err
					return
				}
				if err := build(t, rng); err != nil {
					errs <- err
					return
				}
				o, err := t.Commit()
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				report.Latency.Observe(o.Duration())
				if o.Committed {
					report.Committed++
				} else {
					report.Aborted++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	report.Elapsed = time.Since(start)
	if err := <-errs; err != nil {
		return report, err
	}
	return report, nil
}
