package planet

import (
	"sync/atomic"
	"time"

	"planet/internal/obs"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// dbInstruments caches the DB's registry handles so the transaction hot
// path never takes the registry's get-or-create locks.
type dbInstruments struct {
	stages    map[txn.Stage]*obs.Counter
	apologies *obs.Counter
	deadlines *obs.Counter
	specShed  *obs.Counter
	durations map[string]*obs.Histogram // by outcome label
}

// outcome labels for planet_txn_duration_seconds.
const (
	outcomeCommitted = "committed"
	outcomeAborted   = "aborted"
	outcomeRejected  = "rejected"
)

// newDBInstruments pre-registers every per-stage and per-outcome series so
// a fresh deployment exposes them at zero before any traffic arrives.
func newDBInstruments(reg *obs.Registry, regionList []simnet.Region, inFlight map[simnet.Region]*atomic.Int64) *dbInstruments {
	inst := &dbInstruments{
		stages:    make(map[txn.Stage]*obs.Counter),
		durations: make(map[string]*obs.Histogram, 3),
	}
	stageHelp := "Transactions that reached each lifecycle stage."
	for _, st := range []txn.Stage{txn.StageRejected, txn.StageAccepted, txn.StageInFlight,
		txn.StageSpeculative, txn.StageCommitted, txn.StageAborted} {
		inst.stages[st] = reg.Counter("planet_txn_stage_total", stageHelp, obs.L("stage", st.String()))
	}
	inst.apologies = reg.Counter("planet_txn_apologies_total",
		"Speculative commits that were later aborted (guaranteed apologies).")
	inst.deadlines = reg.Counter("planet_txn_deadline_fired_total",
		"Transactions whose application deadline passed before the decision.")
	inst.specShed = reg.Counter("planet_txn_speculation_shed_total",
		"Transactions whose speculation was disabled because their home region was degraded.")
	durHelp := "Submit-to-decision latency by outcome (scaled emulator time)."
	for _, oc := range []string{outcomeCommitted, outcomeAborted, outcomeRejected} {
		inst.durations[oc] = reg.Histogram("planet_txn_duration_seconds", durHelp, obs.L("outcome", oc))
	}
	for _, r := range regionList {
		ctr := inFlight[r]
		reg.GaugeFunc("planet_txn_in_flight", "Transactions currently in commit processing.",
			func() float64 { return float64(ctr.Load()) }, obs.L("region", string(r)))
	}
	return inst
}

// stage counts one stage transition (nil-safe).
func (i *dbInstruments) stage(st txn.Stage) {
	if i == nil {
		return
	}
	if c := i.stages[st]; c != nil {
		c.Inc()
	}
}

// finished records the outcome duration (nil-safe).
func (i *dbInstruments) finished(outcome string, d time.Duration) {
	if i == nil {
		return
	}
	if h := i.durations[outcome]; h != nil {
		h.Observe(d)
	}
}
