package planet_test

import (
	"fmt"
	"testing"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/workload"
)

// TestSoakMixedWorkload runs a sustained mixed workload — checkouts
// (commutative + physical ops in one transaction) over a skewed keyspace
// from every region with speculation and admission enabled — and then
// audits global invariants. It is the closest thing to a production burn-in
// the suite has; skipped with -short.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	c, err := cluster.New(cluster.Config{TimeScale: 0.005, Seed: 99, WAL: true, CommitTimeout: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		c.Quiesce(5 * time.Second)
	}()
	db, err := planet.Open(planet.Config{
		Cluster:   c,
		Admission: planet.AdmissionPolicy{MinLikelihood: 0.2, ProbeFraction: 0.1},
		Calibrate: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	const products, orders, stock = 64, 512, 1 << 30
	tmpl := workload.Checkout{
		Products: workload.Zipf{Prefix: "p-", N: products, S: 1.2},
		Orders:   workload.Uniform{Prefix: "o-", N: orders},
		NItems:   2,
		Stock:    stock,
	}
	rep, err := workload.Closed{
		Options: workload.Options{
			DB:          db,
			Template:    tmpl,
			SpeculateAt: 0.9,
			Seed:        100,
		},
		Clients: 32, PerClient: 25,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Quiesce(20 * time.Second) {
		t.Fatal("network did not quiesce")
	}

	st := db.Stats()
	t.Logf("soak: %s", rep)
	t.Logf("stats: %+v", st)
	if st.Submitted+st.Rejected != 32*25 {
		t.Errorf("accounting: submitted %d + rejected %d != %d",
			st.Submitted, st.Rejected, 32*25)
	}
	if st.Committed == 0 {
		t.Fatal("soak committed nothing")
	}

	// Invariant: total stock decrease equals 2 units per committed
	// checkout, identically at every replica.
	wantSold := 2 * int64(st.Committed)
	for _, r := range c.Regions() {
		s, err := db.Session(r)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for i := 0; i < products; i++ {
			v, _, err := s.ReadInt(fmt.Sprintf("p-%06d", i))
			if err != nil {
				t.Fatal(err)
			}
			total += v
		}
		if sold := int64(products)*stock - total; sold != wantSold {
			t.Errorf("%s: sold %d units, want %d", r, sold, wantSold)
		}
	}

	// Invariant: WALs agree on the committed set size everywhere.
	want := len(c.WALOf(c.Regions()[0]).Commits())
	for _, r := range c.Regions()[1:] {
		if got := len(c.WALOf(r).Commits()); got != want {
			t.Errorf("%s WAL has %d commits, want %d", r, got, want)
		}
	}
	if uint64(want) != st.Committed {
		t.Errorf("WAL commits %d != stats committed %d", want, st.Committed)
	}

	// The calibration table must have accumulated meaningful volume.
	if db.Calibration().MeanAbsoluteError() > 0.35 {
		t.Errorf("soak calibration MAE=%v", db.Calibration().MeanAbsoluteError())
	}

	// Replica decided-map compaction keeps working state bounded.
	rep0 := c.Replica(c.Regions()[0])
	before := rep0.DecidedCount()
	removed := rep0.CompactDecided(100)
	if rep0.DecidedCount() > 100 {
		t.Errorf("compaction left %d decisions", rep0.DecidedCount())
	}
	if removed != before-rep0.DecidedCount() {
		t.Errorf("compaction accounting: removed %d, delta %d", removed, before-rep0.DecidedCount())
	}
}
