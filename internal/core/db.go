package planet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"planet/internal/cluster"
	"planet/internal/mdcc"
	"planet/internal/metrics"
	"planet/internal/obs"
	"planet/internal/predictor"
	"planet/internal/simnet"
	"planet/internal/txn"
	"planet/internal/vclock"
)

// Errors surfaced through transaction outcomes.
var (
	// ErrAdmission marks a transaction rejected by admission control.
	ErrAdmission = errors.New("planet: rejected by admission control")
	// ErrKeyNotFound is returned by reads of unknown keys.
	ErrKeyNotFound = errors.New("planet: key not found")
)

// AdmissionPolicy configures likelihood-based admission control.
// The zero value admits everything.
type AdmissionPolicy struct {
	// MinLikelihood rejects transactions whose predicted commit
	// likelihood at submission is below this value.
	MinLikelihood float64
	// MaxInFlight, when positive, bounds concurrently executing
	// transactions per region; excess submissions are rejected.
	MaxInFlight int
	// ProbeFraction admits this fraction of below-threshold transactions
	// anyway, keeping the predictor's contention statistics fresh: if a
	// hot record cools down, probes discover it without waiting for the
	// statistics to decay.
	ProbeFraction float64
}

// enabled reports whether the policy can reject anything.
func (a AdmissionPolicy) enabled() bool {
	return a.MinLikelihood > 0 || a.MaxInFlight > 0
}

// Config parameterizes Open.
type Config struct {
	// Cluster is the deployment to run on. Required.
	Cluster *cluster.Cluster
	// Mode selects the commit path (fast with classic fallback, or
	// classic). Defaults to ModeFast.
	Mode mdcc.Mode
	// Admission is the admission-control policy (zero = admit all).
	Admission AdmissionPolicy
	// Adaptive, when enabled, layers a per-region feedback controller over
	// Admission: each epoch it re-derives the likelihood threshold and
	// in-flight bound from observed goodput, abort rate, and commit-latency
	// SLO compliance (see AdaptiveAdmission).
	Adaptive AdaptiveAdmission
	// DisableConflictTerm drops contention statistics from the
	// likelihood model (ablation A2).
	DisableConflictTerm bool
	// DisableLatencyTerm drops deadline-awareness from the likelihood
	// model (ablation A2).
	DisableLatencyTerm bool
	// ConflictHalfLife overrides the contention-decay half-life
	// (emulator time).
	ConflictHalfLife time.Duration
	// Calibrate, when true, records (likelihood, outcome) pairs into a
	// calibration table retrievable via DB.Calibration.
	Calibrate bool
	// Registry, when non-nil, receives protocol metrics from every layer
	// (stage counters, vote latencies, simnet traffic) for Prometheus
	// exposition.
	Registry *obs.Registry
	// Tracer, when non-nil, records per-transaction lifecycle traces.
	Tracer *obs.Tracer
	// Trace enables cross-process causal tracing: every commit gets a root
	// span, protocol messages carry trace context, and spans recorded at
	// replicas and masters flow back to the coordinator's span store, where
	// they stitch into one causal tree per transaction and feed the
	// attribution engine.
	Trace bool
	// TraceCapacity bounds retained per-transaction traces (default 512,
	// FIFO eviction). Attribution statistics survive eviction.
	TraceCapacity int
	// AttributionFeed feeds the attribution engine's per-stage EWMA and
	// jitter into the likelihood predictors: with a commit timeout known,
	// the predictor discounts outstanding votes by whether the learned
	// option-RPC + vote-return cost still fits the remaining budget.
	// Requires Trace.
	AttributionFeed bool
	// CommitTimeout is the commit budget AttributionFeed measures against.
	// Defaults to 30s (the coordinator's own default).
	CommitTimeout time.Duration
	// Health configures per-region degradation tracking; degraded regions
	// shed speculation. The zero value disables tracking.
	Health HealthPolicy
}

// Stats aggregates transaction outcomes across the DB.
type Stats struct {
	Submitted  uint64
	Committed  uint64
	Aborted    uint64
	Rejected   uint64
	Speculated uint64
	Apologies  uint64
}

// regionRT is a region's private runtime: the scheduler partition its
// sessions execute on, its transaction-ID namespace, and its RNG for
// jitter/probe draws. Keeping all three region-local means the parallel
// scheduler's real-time interleaving can never leak into IDs, backoff
// delays, or admission probes — every draw happens on the region's own
// serialized partition.
type regionRT struct {
	clk vclock.Clock
	ids *txn.IDSpace
	mu  sync.Mutex
	rng *rand.Rand
}

// DB is a PLANET database handle over a cluster. Open one per deployment,
// then create per-region Sessions for clients.
type DB struct {
	cfg    Config
	clk    vclock.Clock
	rts    map[simnet.Region]*regionRT
	preds  map[simnet.Region]*predictor.Predictor
	calib  *metrics.Calibration
	tracer *obs.Tracer
	inst   *dbInstruments
	spans  *obs.SpanStores     // nil unless Config.Trace
	attr   *obs.AttributionSet // nil unless Config.Trace

	inFlight map[simnet.Region]*atomic.Int64
	health   map[simnet.Region]*regionHealth // nil entries when disabled
	forced   map[simnet.Region]*atomic.Bool  // operator/transport-forced degradation
	adm      map[simnet.Region]*admissionCtl // nil unless Config.Adaptive.Enabled

	submitted  atomic.Uint64
	committed  atomic.Uint64
	aborted    atomic.Uint64
	rejected   atomic.Uint64
	speculated atomic.Uint64
	apologies  atomic.Uint64
	specShed   atomic.Uint64
}

// Open wires a DB over cfg.Cluster.
func Open(cfg Config) (*DB, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("planet: Config.Cluster is required")
	}
	regionList := cfg.Cluster.Regions()
	clk := cfg.Cluster.Clock()
	db := &DB{
		cfg:      cfg,
		clk:      clk,
		rts:      make(map[simnet.Region]*regionRT, len(regionList)),
		preds:    make(map[simnet.Region]*predictor.Predictor, len(regionList)),
		inFlight: make(map[simnet.Region]*atomic.Int64, len(regionList)),
		health:   make(map[simnet.Region]*regionHealth, len(regionList)),
		forced:   make(map[simnet.Region]*atomic.Bool, len(regionList)),
		tracer:   cfg.Tracer,
	}
	for i, r := range regionList {
		db.rts[r] = &regionRT{
			clk: cfg.Cluster.ClockFor(r),
			ids: txn.NewIDSpace(i),
			rng: rand.New(rand.NewSource(1 + int64(i))),
		}
	}
	if cfg.Health.enabled() {
		if cfg.Health.Window <= 0 {
			cfg.Health.Window = defaultHealthWindow
		}
		if cfg.Health.MinSamples <= 0 {
			cfg.Health.MinSamples = defaultHealthMinSamples
		}
		db.cfg.Health = cfg.Health
		for _, r := range regionList {
			db.health[r] = newRegionHealth(cfg.Health)
		}
	}
	if cfg.Calibrate {
		db.calib = metrics.NewCalibration(10)
	}
	if cfg.Trace {
		names := make([]string, len(regionList))
		for i, r := range regionList {
			names[i] = string(r)
		}
		// One span shard per region: every protocol actor records into (or
		// flushes to) its own region's shard — remote actors' spans arrive
		// as spanReportMsg and land at the transaction's home coordinator —
		// so each shard's add order is serialized by its region's scheduler
		// partition.
		db.spans = obs.NewSpanStores(obs.SpanStoreConfig{Capacity: cfg.TraceCapacity}, names)
		db.attr = db.spans.Attribution()
		for _, r := range regionList {
			if coord := cfg.Cluster.Coordinator(r); coord != nil {
				coord.SetSpans(db.spans.For(string(r)))
			}
			if rep := cfg.Cluster.Replica(r); rep != nil {
				rep.SetSpans(db.spans.For(string(r)))
			}
		}
	}
	if cfg.CommitTimeout <= 0 {
		cfg.CommitTimeout = cfg.Cluster.CommitTimeout()
	}
	for _, r := range regionList {
		// The feed is the region's own shard: a predictor only ever learns
		// from spans its own coordinator recorded, which keeps its reads on
		// the region's partition (a merged cross-region feed would read
		// other partitions' half-updated statistics at nondeterministic
		// points).
		var feed predictor.StageFeed
		if cfg.AttributionFeed && db.spans != nil {
			feed = db.spans.For(string(r)).Attribution()
		}
		db.preds[r] = predictor.New(predictor.Config{
			Regions:          regionList,
			Clock:            db.rts[r].clk,
			FastQuorum:       mdcc.FastQuorum(len(regionList)),
			ConflictHalfLife: cfg.ConflictHalfLife,
			UseConflicts:     !cfg.DisableConflictTerm,
			UseLatency:       !cfg.DisableLatencyTerm,
			StageFeed:        feed,
			CommitTimeout:    cfg.CommitTimeout,
		})
		db.inFlight[r] = &atomic.Int64{}
		db.forced[r] = &atomic.Bool{}
	}
	if cfg.Adaptive.Enabled {
		db.adm = make(map[simnet.Region]*admissionCtl, len(regionList))
		for _, r := range regionList {
			db.adm[r] = newAdmissionCtl(db.rts[r].clk, cfg.Adaptive, cfg.Admission)
		}
	}
	if reg := cfg.Registry; reg != nil {
		db.inst = newDBInstruments(reg, regionList, db.inFlight)
		// Instrument the layers below: simnet traffic and per-region
		// coordinator protocol activity all land in the same registry. In a
		// realnet deployment there is no simnet network and only the local
		// region has a coordinator, hence the nil guards.
		if cfg.Cluster.Net != nil {
			cfg.Cluster.Net.SetObserver(obs.NewNetInstruments(reg))
		}
		for _, r := range regionList {
			if coord := cfg.Cluster.Coordinator(r); coord != nil {
				coord.SetObserver(obs.NewCoordInstruments(reg, r))
			}
		}
		for _, r := range regionList {
			if c := db.adm[r]; c != nil {
				lbl := obs.L("region", string(r))
				reg.GaugeFunc("planet_admission_min_likelihood",
					"Adaptive admission: current likelihood threshold.",
					func() float64 { return math.Float64frombits(c.minLikelihood.Load()) }, lbl)
				reg.GaugeFunc("planet_admission_max_inflight",
					"Adaptive admission: current AIMD in-flight window.",
					func() float64 { return float64(c.maxInFlight.Load()) }, lbl)
				reg.GaugeFunc("planet_admission_spec_floor",
					"Adaptive admission: current speculation floor.",
					c.specFloorVal, lbl)
			}
		}
		for _, r := range regionList {
			if hr := db.health[r]; hr != nil {
				reg.GaugeFunc("planet_region_degraded",
					"Whether the region's recent timeout rate crossed the health threshold (1 = degraded).",
					func() float64 {
						if hr.degraded() {
							return 1
						}
						return 0
					}, obs.L("region", string(r)))
			}
		}
	}
	// Start the admission controllers last: their first epoch tick must not
	// race DB construction on a real-time clock.
	for _, r := range regionList {
		if c := db.adm[r]; c != nil {
			c.start()
		}
	}
	return db, nil
}

// admFor returns region r's adaptive admission controller, or nil when the
// controller is disabled.
func (db *DB) admFor(r simnet.Region) *admissionCtl { return db.adm[r] }

// AdmissionState snapshots region r's adaptive admission controller. The
// zero value is returned when the controller is disabled.
func (db *DB) AdmissionState(r simnet.Region) AdmissionState {
	if c := db.adm[r]; c != nil {
		return c.state()
	}
	return AdmissionState{}
}

// StopAdmission halts the adaptive controllers' epoch timers. Real-time
// deployments that outlive their workload call it on shutdown; under
// virtual time the chains die with the scheduler.
func (db *DB) StopAdmission() {
	for _, c := range db.adm {
		c.stop()
	}
}

// Cluster returns the underlying deployment.
func (db *DB) Cluster() *cluster.Cluster { return db.cfg.Cluster }

// Predictor returns the region's likelihood predictor (harness, tests).
func (db *DB) Predictor(r simnet.Region) *predictor.Predictor { return db.preds[r] }

// Calibration returns the calibration table (nil unless Config.Calibrate).
func (db *DB) Calibration() *metrics.Calibration { return db.calib }

// Registry returns the metrics registry (nil unless configured).
func (db *DB) Registry() *obs.Registry { return db.cfg.Registry }

// Tracer returns the lifecycle tracer (nil unless configured).
func (db *DB) Tracer() *obs.Tracer { return db.tracer }

// Spans returns the causal span stores, sharded by home region (nil unless
// Config.Trace).
func (db *DB) Spans() *obs.SpanStores { return db.spans }

// Attribution returns the merged per-stage latency attribution view over
// every region's engine (nil unless Config.Trace).
func (db *DB) Attribution() *obs.AttributionSet { return db.attr }

// Stats snapshots the outcome counters.
func (db *DB) Stats() Stats {
	return Stats{
		Submitted:  db.submitted.Load(),
		Committed:  db.committed.Load(),
		Aborted:    db.aborted.Load(),
		Rejected:   db.rejected.Load(),
		Speculated: db.speculated.Load(),
		Apologies:  db.apologies.Load(),
	}
}

// RegionDegraded reports whether the region currently sheds speculation:
// either its health tracker judges it degraded (always false when
// Config.Health is disabled) or degradation was forced via
// SetRegionForcedDegraded (transport peer health, operator override).
func (db *DB) RegionDegraded(r simnet.Region) bool {
	if f := db.forced[r]; f != nil && f.Load() {
		return true
	}
	return db.health[r].degraded()
}

// SetRegionForcedDegraded forces (or clears) degradation for a region
// independent of the timeout-rate tracker. The realnet deployment wires
// transport peer health into it: when enough peers are down that the fast
// quorum cannot form, speculation is pointless and sheds immediately.
// Unknown regions are ignored.
func (db *DB) SetRegionForcedDegraded(r simnet.Region, degraded bool) {
	if f := db.forced[r]; f != nil {
		f.Store(degraded)
	}
}

// InFlight returns the number of transactions currently executing across
// all regions. Graceful shutdown drains on it.
func (db *DB) InFlight() int64 {
	var n int64
	for _, c := range db.inFlight {
		n += c.Load()
	}
	return n
}

// SpeculationShed reports how many transactions had speculation disabled
// because their home region was degraded.
func (db *DB) SpeculationShed() uint64 { return db.specShed.Load() }

// rt returns the region's runtime (nil for unknown regions).
func (db *DB) rt(r simnet.Region) *regionRT { return db.rts[r] }

// clockFor returns the scheduler partition region r's sessions run on.
func (db *DB) clockFor(r simnet.Region) vclock.Clock {
	if rt := db.rts[r]; rt != nil {
		return rt.clk
	}
	return db.clk
}

// jitter draws a multiplier in [0.5, 1.5) for retry backoff, from the
// region's private stream.
func (db *DB) jitter(r simnet.Region) float64 {
	rt := db.rts[r]
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return 0.5 + rt.rng.Float64()
}

// probe draws whether a below-threshold transaction is admitted anyway.
func (db *DB) probe(r simnet.Region, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	rt := db.rts[r]
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.rng.Float64() < fraction
}

// Session returns a client handle bound to a region: reads are served by
// that region's replica and commits are coordinated there, exactly like an
// application server co-located with a datacenter.
func (db *DB) Session(region simnet.Region) (*Session, error) {
	coord := db.cfg.Cluster.Coordinator(region)
	replica := db.cfg.Cluster.Replica(region)
	if coord == nil || replica == nil {
		return nil, fmt.Errorf("planet: unknown region %q", region)
	}
	return &Session{
		db: db, region: region, coord: coord, replica: replica,
		pred: db.preds[region], clk: db.clockFor(region),
	}, nil
}

// Session is a per-region client. Under a partitioned scheduler its
// goroutines execute on the region's partition (spawn them with
// Clock().Go or vclock.Group.GoOn).
type Session struct {
	db      *DB
	region  simnet.Region
	coord   *mdcc.Coordinator
	replica *mdcc.Replica
	pred    *predictor.Predictor
	clk     vclock.Clock
}

// Clock returns the scheduler partition the session's region runs on.
func (s *Session) Clock() vclock.Clock { return s.clk }

// Region returns the session's home region.
func (s *Session) Region() simnet.Region { return s.region }

// ReadBytes returns the committed byte value and version of key at the
// local replica. The replica hands out immutable views; the copy here keeps
// the public contract that callers own (and may scribble on) the result.
func (s *Session) ReadBytes(key string) ([]byte, int64, error) {
	v, ok := s.replica.ReadLocal(key)
	if !ok {
		return nil, 0, fmt.Errorf("planet: read %q: %w", key, ErrKeyNotFound)
	}
	return append([]byte(nil), v.Bytes...), v.Version, nil
}

// ReadInt returns the committed integer value and version of key at the
// local replica.
func (s *Session) ReadInt(key string) (int64, int64, error) {
	v, ok := s.replica.ReadLocal(key)
	if !ok {
		return 0, 0, fmt.Errorf("planet: read %q: %w", key, ErrKeyNotFound)
	}
	return v.Int, v.Version, nil
}

// quorumReadTimeout is the WAN-time budget for a quorum read.
const quorumReadTimeout = 5 * time.Second

// QuorumReadBytes reads key from a majority of replicas and returns the
// freshest committed bytes. One wide-area round trip, but unlike the local
// ReadBytes it observes every write committed and propagated before the
// read began.
func (s *Session) QuorumReadBytes(key string) ([]byte, int64, error) {
	v, found, err := s.coord.QuorumRead(key, s.db.cfg.Cluster.ScaleDuration(quorumReadTimeout))
	if err != nil {
		return nil, 0, err
	}
	if !found {
		return nil, 0, fmt.Errorf("planet: quorum read %q: %w", key, ErrKeyNotFound)
	}
	return append([]byte(nil), v.Bytes...), v.Version, nil
}

// QuorumReadInt is QuorumReadBytes for integer records.
func (s *Session) QuorumReadInt(key string) (int64, int64, error) {
	v, found, err := s.coord.QuorumRead(key, s.db.cfg.Cluster.ScaleDuration(quorumReadTimeout))
	if err != nil {
		return 0, 0, err
	}
	if !found {
		return 0, 0, fmt.Errorf("planet: quorum read %q: %w", key, ErrKeyNotFound)
	}
	return v.Int, v.Version, nil
}

// Begin starts a transaction.
func (s *Session) Begin() *Txn {
	return &Txn{session: s, reads: make(map[string]int64), writes: make(map[string]write)}
}
