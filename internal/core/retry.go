package planet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"planet/internal/mdcc"
	"planet/internal/txn"
)

// MaxAttemptsDefault is Run's attempt budget when the caller passes 0.
const MaxAttemptsDefault = 5

// Backoff between retry attempts, in unscaled WAN time; the session scales
// it through the cluster's TimeScale so tests stay fast. The delay doubles
// per attempt from the base, caps at the max, and is jittered by a factor
// in [0.5, 1.5) so colliding transactions do not re-collide in lockstep.
const (
	retryBackoffBase = 50 * time.Millisecond
	retryBackoffMax  = 2 * time.Second
)

// backoff returns the scaled, jittered delay before retry attempt (0-based:
// the delay after the attempt-th failure).
func (s *Session) backoff(attempt int) time.Duration {
	d := retryBackoffBase
	for i := 0; i < attempt && d < retryBackoffMax; i++ {
		d *= 2
	}
	if d > retryBackoffMax {
		d = retryBackoffMax
	}
	d = time.Duration(float64(d) * s.db.jitter(s.region))
	return s.db.cfg.Cluster.ScaleDuration(d)
}

// Run executes fn inside a transaction and commits it, retrying the whole
// closure on optimistic-concurrency conflicts (the record moved, or a
// competing option was pending) up to attempts times. Each retry re-reads
// through a fresh transaction, so fn must be idempotent up to its writes.
//
// Run blocks until the final decision — it is the convenience wrapper for
// code that does not need the staged callback API. Retries are not
// attempted for bound violations (retrying cannot help), admission
// rejections (the system said no), or errors returned by fn itself.
// Between retries Run sleeps a jittered exponential backoff so a herd of
// conflicting transactions spreads out instead of re-colliding.
func (s *Session) Run(attempts int, fn func(*Txn) error) (txn.Outcome, error) {
	return s.RunCtx(context.Background(), attempts, fn)
}

// RunCtx is Run with cancellation: it stops retrying — and stops waiting on
// an in-flight commit — once ctx is done, returning ctx's error. An
// abandoned in-flight transaction still runs to its decision in the
// background; cancellation gives up the wait, not the commit.
func (s *Session) RunCtx(ctx context.Context, attempts int, fn func(*Txn) error) (txn.Outcome, error) {
	if attempts <= 0 {
		attempts = MaxAttemptsDefault
	}
	var last txn.Outcome
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return last, err
		}
		tx := s.Begin()
		if err := fn(tx); err != nil {
			return txn.Outcome{}, fmt.Errorf("planet: Run closure: %w", err)
		}
		h, err := tx.Commit(CommitOptions{})
		if err != nil {
			return txn.Outcome{}, err
		}
		last, err = h.WaitCtx(ctx)
		if err != nil {
			return last, err
		}
		switch {
		case last.Committed:
			return last, nil
		case last.Rejected:
			return last, last.Err
		case errors.Is(last.Err, mdcc.ErrConflict) || errors.Is(last.Err, mdcc.ErrAmbiguous):
			// Optimistic retry, after a context-aware backoff sleep.
			if i+1 >= attempts {
				continue
			}
			if err := s.clk.SleepCtx(ctx, s.backoff(i)); err != nil {
				return last, err
			}
		default:
			return last, last.Err
		}
	}
	return last, fmt.Errorf("planet: Run gave up after %d attempts: %w", attempts, last.Err)
}
