package planet

import (
	"errors"
	"fmt"

	"planet/internal/mdcc"
	"planet/internal/txn"
)

// MaxAttemptsDefault is Run's attempt budget when the caller passes 0.
const MaxAttemptsDefault = 5

// Run executes fn inside a transaction and commits it, retrying the whole
// closure on optimistic-concurrency conflicts (the record moved, or a
// competing option was pending) up to attempts times. Each retry re-reads
// through a fresh transaction, so fn must be idempotent up to its writes.
//
// Run blocks until the final decision — it is the convenience wrapper for
// code that does not need the staged callback API. Retries are not
// attempted for bound violations (retrying cannot help), admission
// rejections (the system said no), or errors returned by fn itself.
func (s *Session) Run(attempts int, fn func(*Txn) error) (txn.Outcome, error) {
	if attempts <= 0 {
		attempts = MaxAttemptsDefault
	}
	var last txn.Outcome
	for i := 0; i < attempts; i++ {
		tx := s.Begin()
		if err := fn(tx); err != nil {
			return txn.Outcome{}, fmt.Errorf("planet: Run closure: %w", err)
		}
		h, err := tx.Commit(CommitOptions{})
		if err != nil {
			return txn.Outcome{}, err
		}
		last = h.Wait()
		switch {
		case last.Committed:
			return last, nil
		case last.Rejected:
			return last, last.Err
		case errors.Is(last.Err, mdcc.ErrConflict) || errors.Is(last.Err, mdcc.ErrAmbiguous):
			continue // optimistic retry
		default:
			return last, last.Err
		}
	}
	return last, fmt.Errorf("planet: Run gave up after %d attempts: %w", attempts, last.Err)
}
