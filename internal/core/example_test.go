package planet_test

import (
	"fmt"
	"log"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/regions"
	"planet/internal/txn"
)

// Example shows the staged commit API end to end: read, buffer writes,
// commit with callbacks, and wait for the geo-replicated decision.
func Example() {
	c, err := cluster.New(cluster.Config{TimeScale: 0.01, Seed: 1, CommitTimeout: 60 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	db, err := planet.Open(planet.Config{Cluster: c})
	if err != nil {
		log.Fatal(err)
	}
	c.SeedInt("stock", 10, 0, 10)

	s, err := db.Session(regions.California)
	if err != nil {
		log.Fatal(err)
	}
	tx := s.Begin()
	tx.Add("stock", -2)
	h, err := tx.Commit(planet.CommitOptions{
		OnFinal: func(o txn.Outcome) {
			fmt.Println("final: committed =", o.Committed)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	o := h.Wait()
	fmt.Println("stock sold:", o.Committed)
	// Output:
	// final: committed = true
	// stock sold: true
}

// ExampleSession_Run shows the optimistic retry helper: the closure is
// re-executed with fresh reads whenever the commit hits a write conflict.
func ExampleSession_Run() {
	c, err := cluster.New(cluster.Config{TimeScale: 0.01, Seed: 2, CommitTimeout: 60 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	db, err := planet.Open(planet.Config{Cluster: c})
	if err != nil {
		log.Fatal(err)
	}
	c.SeedBytes("profile", []byte("v1"))

	s, err := db.Session(regions.Tokyo)
	if err != nil {
		log.Fatal(err)
	}
	outcome, err := s.Run(0, func(tx *planet.Txn) error {
		old, err := tx.Read("profile")
		if err != nil {
			return err
		}
		tx.Set("profile", append(old, []byte("+edit")...))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed:", outcome.Committed)
	// Output:
	// committed: true
}

// ExampleSession_QuorumReadBytes shows the freshness upgrade over local
// reads: a majority read observes writes a lagging replica may not have
// applied yet.
func ExampleSession_QuorumReadBytes() {
	c, err := cluster.New(cluster.Config{TimeScale: 0.01, Seed: 3, CommitTimeout: 60 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	db, err := planet.Open(planet.Config{Cluster: c})
	if err != nil {
		log.Fatal(err)
	}
	c.SeedBytes("k", []byte("fresh"))
	c.Quiesce(5 * time.Second)

	s, err := db.Session(regions.Singapore)
	if err != nil {
		log.Fatal(err)
	}
	v, version, err := s.QuorumReadBytes("k")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s @ v%d\n", v, version)
	// Output:
	// fresh @ v0
}
