// Package planet implements the PLANET transaction programming model
// (Predictive Latency-Aware NEtworked Transactions, SIGMOD 2014): staged
// transactions whose internal commit progress is exposed to the application
// through callbacks, with continuously updated commit-likelihood
// prediction, speculative commits with guaranteed apologies, and
// likelihood-based admission control.
//
// # The staged transaction model
//
// A PLANET transaction advances through monotonically increasing stages:
//
//	init → accepted → in-flight → (speculative) → committed | aborted
//	     ↘ rejected (admission control)
//
// Instead of blocking until a geo-replicated commit finishes — hundreds of
// milliseconds away in the tail — the application commits asynchronously
// and registers callbacks:
//
//	h, err := tx.Commit(planet.CommitOptions{
//		SpeculateAt: 0.95,
//		OnAccept:    func(planet.Progress) { showSpinner() },
//		OnSpeculative: func(p planet.Progress) {
//			// ≥95% likely to commit: respond to the user now.
//			showOrderConfirmed(p.Likelihood)
//		},
//		OnFinal: func(o txn.Outcome) { markDurable(o) },
//		OnApology: func(o txn.Outcome) {
//			// The speculation was wrong: compensate.
//			emailApology(o)
//		},
//	})
//
// The guaranteed-apology contract: OnApology fires if and only if the
// transaction reported a speculative commit and then aborted. OnFinal fires
// for every transaction exactly once (including admission rejections), and
// callback order is always accept ≤ progress* ≤ speculative ≤ final ≤
// apology.
//
// # Prediction and admission
//
// Each region's coordinator feeds a predictor with vote round-trip times
// and per-record contention statistics; the handle recomputes the commit
// likelihood on every protocol event. Admission control consults the same
// predictor before any protocol work: transactions whose prior commit
// likelihood is below the policy threshold are rejected immediately,
// converting doomed work into instant feedback and protecting goodput
// under contention.
//
// The package name is planet (not the directory name core): this is the
// system's public API and call sites should read planet.Open, planet.Txn.
package planet
