package planet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"planet/internal/mdcc"
	"planet/internal/obs"
	"planet/internal/predictor"
	"planet/internal/simnet"
	"planet/internal/txn"
	"planet/internal/vclock"
)

// Progress is a snapshot of a transaction's commit progress, passed to
// stage and progress callbacks.
type Progress struct {
	Txn        txn.ID
	Stage      txn.Stage
	Likelihood float64
	Elapsed    time.Duration
	// VotesReceived / VotesExpected count fast-path replica votes.
	VotesReceived int
	VotesExpected int
	// OptionsLearned counts options with a definitive accept/reject.
	OptionsLearned int
	OptionsTotal   int
}

// String implements fmt.Stringer.
func (p Progress) String() string {
	return fmt.Sprintf("%s %s likelihood=%.3f votes=%d/%d opts=%d/%d t=%s",
		p.Txn, p.Stage, p.Likelihood, p.VotesReceived, p.VotesExpected,
		p.OptionsLearned, p.OptionsTotal, p.Elapsed)
}

// CommitOptions configures one staged commit. All callbacks are optional;
// they run on a per-transaction dispatch goroutine in stage order
// (accept ≤ progress* ≤ speculative ≤ deadline? ≤ final ≤ apology), so a
// slow callback delays later callbacks of the same transaction only.
type CommitOptions struct {
	// SpeculateAt, in (0,1], fires OnSpeculative once the predicted
	// commit likelihood reaches the threshold. Zero disables speculation.
	SpeculateAt float64
	// Deadline, measured from submission in wall-clock (emulator) time,
	// fires OnDeadline with the live progress if the transaction has not
	// finished by then. The transaction keeps running.
	Deadline time.Duration
	// OnAccept fires when the system takes responsibility for the
	// transaction (admission passed, commit processing started).
	OnAccept func(Progress)
	// OnProgress fires on every protocol event (vote, fallback, learn).
	OnProgress func(Progress)
	// OnSpeculative fires at most once, when likelihood ≥ SpeculateAt.
	OnSpeculative func(Progress)
	// OnDeadline fires if the deadline passes before the final decision.
	OnDeadline func(Progress)
	// OnFinal fires exactly once with the transaction's outcome,
	// including admission rejections.
	OnFinal func(txn.Outcome)
	// OnApology fires after OnFinal iff the transaction speculated and
	// then aborted — the guaranteed apology.
	OnApology func(txn.Outcome)
}

// optTrack follows one option's votes at the handle.
type optTrack struct {
	key      string
	accepts  int
	voted    uint64 // bitmask over Handle.regions indices
	fellBack bool
	learned  int
}

// Handle is a staged commit in flight. Obtain one from Txn.Commit.
type Handle struct {
	id      txn.ID
	db      *DB
	session *Session
	clk     vclock.Clock   // the home region's scheduler partition
	spans   *obs.SpanStore // the home region's span shard (nil untraced)
	opts    CommitOptions
	regions []simnet.Region
	// span is the transaction's root trace span id (0 = untraced). Every
	// span recorded for the transaction — locally or at remote replicas and
	// masters — descends from it.
	span uint64

	mu         sync.Mutex
	stage      txn.Stage
	likelihood float64
	tracks     []optTrack // per-option vote state, in submission order
	votes      int
	learnedN   int
	speculated bool
	terminal   bool
	outcome    txn.Outcome
	samples    []float64 // in-flight likelihood samples for calibration
	start      time.Time
	timer      vclock.Timer

	// Callback dispatch: an unbounded queue of (callback, ticket) pairs
	// drained in order by a per-handle goroutine. The ticket is reserved at
	// enqueue time, which fixes each callback's position in the virtual
	// scheduler's run queue — dispatch order across all handles is then
	// deterministic, not a race between dispatch goroutines.
	cbmu   sync.Mutex
	cbcond *sync.Cond
	cbq    []cbItem
	done   *vclock.Event
}

// cbItem is one queued callback; a nil f is the termination sentinel.
type cbItem struct {
	f func()
	t vclock.Ticket
}

// maxCalibSamples caps per-transaction calibration samples.
const maxCalibSamples = 64

// Commit submits the transaction through admission control and starts
// commit processing. It returns an error only for malformed transactions
// (mixed Set/Add on a key, double commit); admission rejections and commit
// outcomes are reported through the handle.
func (t *Txn) Commit(opts CommitOptions) (*Handle, error) {
	if t.committed {
		return nil, fmt.Errorf("planet: transaction committed twice")
	}
	ops, err := t.ops()
	if err != nil {
		return nil, err
	}
	t.committed = true

	s := t.session
	db := s.db
	regionList := db.cfg.Cluster.Regions()

	// Health shedding: a degraded home region means votes are probably
	// about to time out, so optimistic speculation would mostly turn into
	// apologies. Drop it for this transaction; the commit itself proceeds.
	shedSpec := false
	if opts.SpeculateAt > 0 && db.RegionDegraded(s.region) {
		opts.SpeculateAt = 0
		shedSpec = true
		db.specShed.Add(1)
		if db.inst != nil {
			db.inst.specShed.Inc()
		}
	}

	// Adaptive speculation floor: under a high-abort regime the region's
	// controller raises the bar for speculating above what the workload
	// asked for — permissive speculation there mostly manufactures
	// apologies.
	ctl := db.admFor(s.region)
	if ctl != nil && opts.SpeculateAt > 0 {
		if f := ctl.specFloorVal(); f > opts.SpeculateAt {
			opts.SpeculateAt = f
		}
	}

	h := &Handle{
		id:      db.rt(s.region).ids.NewID(),
		db:      db,
		session: s,
		clk:     s.clk,
		spans:   db.spans.For(string(s.region)),
		opts:    opts,
		regions: regionList,
		tracks:  make([]optTrack, len(ops)),
		start:   s.clk.Now(),
		done:    s.clk.NewEvent(),
	}
	for i, op := range ops {
		h.tracks[i] = optTrack{
			key:      op.Key,
			fellBack: db.cfg.Mode == mdcc.ModeClassic,
		}
	}
	if h.spans != nil {
		h.span = obs.NewSpanID()
	}
	h.cbcond = sync.NewCond(&h.cbmu)
	go h.dispatch()

	db.tracer.Begin(h.id)
	subEv := obs.Event{Kind: obs.EvSubmitted}
	if shedSpec {
		subEv.Note = "speculation shed: region degraded"
	}
	db.tracer.Record(h.id, subEv)

	// Admission control: consult the predictor before any protocol work.
	prior := s.pred.LikelihoodAtSubmit(t.Keys())
	h.likelihood = prior
	pol := db.cfg.Admission
	if ctl != nil {
		pol = ctl.policy(pol)
		ctl.observePrior(prior)
	}
	if pol.enabled() && len(ops) > 0 {
		inFlight := db.inFlight[s.region]
		if pol.MinLikelihood > 0 && prior < pol.MinLikelihood && !db.probe(s.region, pol.ProbeFraction) {
			db.rejected.Add(1)
			db.tracer.Record(h.id, obs.Event{Kind: obs.EvAdmission,
				Likelihood: prior, Note: "below-min-likelihood"})
			h.reject()
			return h, nil
		}
		if pol.MaxInFlight > 0 && inFlight.Load() >= int64(pol.MaxInFlight) {
			db.rejected.Add(1)
			db.tracer.Record(h.id, obs.Event{Kind: obs.EvAdmission,
				Likelihood: prior, Note: "max-in-flight"})
			h.reject()
			return h, nil
		}
	}

	db.submitted.Add(1)
	db.inFlight[s.region].Add(1)
	h.stage = txn.StageAccepted
	db.inst.stage(txn.StageAccepted)
	db.tracer.Record(h.id, obs.Event{Kind: obs.EvAdmission, Accept: true, Likelihood: prior})
	h.recordSpan(obs.StageAdmit, h.start, "")
	h.enqueue(h.opts.OnAccept, h.progressLocked())

	// The prior may already clear the speculation threshold — an
	// uncontended transaction needs no votes to be a near-certain commit,
	// so the speculative stage fires at submission.
	if opts.SpeculateAt > 0 && prior >= opts.SpeculateAt {
		h.speculated = true
		h.stage = txn.StageSpeculative
		db.speculated.Add(1)
		db.inst.stage(txn.StageSpeculative)
		db.tracer.Record(h.id, obs.Event{Kind: obs.EvSpeculative, Likelihood: prior})
		h.enqueue(h.opts.OnSpeculative, h.progressLocked())
	}

	if opts.Deadline > 0 {
		h.timer = s.clk.AfterFunc(opts.Deadline, h.onDeadline)
	}
	preSubmit := s.clk.Now()
	if err := s.coord.SubmitTraced(h.id, ops, db.cfg.Mode, (*handleSink)(h), h.span); err != nil {
		// Unreachable for well-formed ops, but fail closed.
		db.inFlight[s.region].Add(-1)
		h.finishLocked(false, err, true)
		return h, nil
	}
	h.recordSpan(obs.StageSubmit, preSubmit, "")
	return h, nil
}

// recordSpan records one core-side span under the transaction's root,
// ending now. No-op when the transaction is untraced.
func (h *Handle) recordSpan(st obs.Stage, start time.Time, note string) {
	if h.span == 0 {
		return
	}
	h.spans.Add(obs.Span{
		Txn: h.id, ID: obs.NewSpanID(), Parent: h.span, Stage: st,
		Region: string(h.session.region), Note: note,
		Start: start, End: h.clk.Now(),
	})
}

// ID returns the transaction ID.
func (h *Handle) ID() txn.ID { return h.id }

// Stage returns the current stage.
func (h *Handle) Stage() txn.Stage {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stage
}

// Likelihood returns the latest predicted commit likelihood.
func (h *Handle) Likelihood() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.likelihood
}

// Progress returns a live snapshot.
func (h *Handle) Progress() Progress {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.progressLocked()
}

// Wait blocks until every callback has run and returns the outcome.
func (h *Handle) Wait() txn.Outcome {
	h.done.Wait()
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.outcome
}

// WaitCtx waits like Wait but abandons the wait when ctx is done,
// returning ctx's error. The transaction itself keeps running — callbacks
// still fire and the outcome remains retrievable via Wait or Done.
func (h *Handle) WaitCtx(ctx context.Context) (txn.Outcome, error) {
	if err := h.done.WaitCtx(ctx); err != nil {
		return txn.Outcome{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.outcome, nil
}

// Done returns a channel closed after the final callback. Select-based
// waits on it are for real-clock code (HTTP handlers); under a virtual
// clock use Wait/WaitCtx so the wait participates in time accounting.
func (h *Handle) Done() <-chan struct{} { return h.done.Done() }

// progressLocked builds a snapshot. Caller holds h.mu.
func (h *Handle) progressLocked() Progress {
	return Progress{
		Txn:            h.id,
		Stage:          h.stage,
		Likelihood:     h.likelihood,
		Elapsed:        h.clk.Since(h.start),
		VotesReceived:  h.votes,
		VotesExpected:  len(h.regions) * len(h.tracks),
		OptionsLearned: h.learnedN,
		OptionsTotal:   len(h.tracks),
	}
}

// push appends one callback (nil = sentinel) with a freshly reserved
// ticket and wakes the dispatch goroutine.
func (h *Handle) push(f func()) {
	t := h.clk.Ticket()
	h.cbmu.Lock()
	h.cbq = append(h.cbq, cbItem{f: f, t: t})
	h.cbmu.Unlock()
	h.cbcond.Signal()
}

// enqueue schedules one callback invocation; nil callbacks are skipped.
func (h *Handle) enqueue(cb func(Progress), p Progress) {
	if cb == nil {
		return
	}
	h.push(func() { cb(p) })
}

// enqueueOutcome schedules an outcome callback.
func (h *Handle) enqueueOutcome(cb func(txn.Outcome), o txn.Outcome) {
	if cb == nil {
		return
	}
	h.push(func() { cb(o) })
}

// dispatch runs callbacks in order until the sentinel, then releases Wait.
// Each callback runs inside its reserved ticket; callbacks must not block
// through the clock.
func (h *Handle) dispatch() {
	for {
		h.cbmu.Lock()
		for len(h.cbq) == 0 {
			h.cbcond.Wait()
		}
		it := h.cbq[0]
		h.cbq = h.cbq[1:]
		h.cbmu.Unlock()
		if it.f == nil {
			it.t.Run(func() { h.done.Fire() })
			return
		}
		it.t.Run(it.f)
	}
}

// reject finalizes an admission rejection.
func (h *Handle) reject() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stage = txn.StageRejected
	h.terminal = true
	h.outcome = txn.Outcome{
		ID: h.id, Rejected: true, Err: ErrAdmission,
		Submitted: h.start, Decided: h.clk.Now(),
	}
	if c := h.db.admFor(h.session.region); c != nil {
		c.observeReject()
	}
	h.db.inst.stage(txn.StageRejected)
	h.db.inst.finished(outcomeRejected, h.outcome.Duration())
	h.db.tracer.Record(h.id, obs.Event{Kind: obs.EvFinal, Note: ErrAdmission.Error()})
	h.db.tracer.Finish(h.id, outcomeRejected, false)
	h.enqueueOutcome(h.opts.OnFinal, h.outcome)
	h.push(nil)
}

// onDeadline fires the deadline callback if the transaction is still open.
func (h *Handle) onDeadline() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.terminal {
		return
	}
	if h.db.inst != nil {
		h.db.inst.deadlines.Inc()
	}
	h.db.tracer.Record(h.id, obs.Event{Kind: obs.EvDeadline, Likelihood: h.likelihood})
	h.enqueue(h.opts.OnDeadline, h.progressLocked())
}

// track returns the option state for key, or nil. Linear scan: transactions
// touch a handful of keys, and the slice keeps submission order for free.
func (h *Handle) track(key string) *optTrack {
	for i := range h.tracks {
		if h.tracks[i].key == key {
			return &h.tracks[i]
		}
	}
	return nil
}

// flightLocked converts the tracked state into the predictor's view.
// Caller holds h.mu. The tracks slice is in submission order, which keeps
// the likelihood product bit-for-bit reproducible.
func (h *Handle) flightLocked() predictor.Flight {
	f := predictor.Flight{Elapsed: h.clk.Since(h.start), Deadline: h.opts.Deadline}
	for i := range h.tracks {
		tr := &h.tracks[i]
		of := predictor.OptionFlight{
			Key:      tr.key,
			Accepts:  tr.accepts,
			FellBack: tr.fellBack,
			Learned:  tr.learned,
		}
		if !tr.fellBack && tr.learned == 0 {
			for ri, r := range h.regions {
				if tr.voted&(1<<uint(ri)) == 0 {
					of.Remaining = append(of.Remaining, r)
				}
			}
		}
		f.Options = append(f.Options, of)
	}
	return f
}

// handleSink adapts Handle to mdcc.ProgressSink without widening Handle's
// exported method set.
type handleSink Handle

// Progress implements mdcc.ProgressSink.
func (hs *handleSink) Progress(e mdcc.ProgressEvent) {
	h := (*Handle)(hs)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.terminal {
		return
	}
	var evKind obs.EventKind
	switch e.Kind {
	case mdcc.KindSubmitted, mdcc.KindDecided:
		return
	case mdcc.KindVote:
		tr := h.track(e.Key)
		var bit uint64
		for ri, r := range h.regions {
			if r == e.Region {
				bit = 1 << uint(ri)
				break
			}
		}
		if tr == nil || bit == 0 || tr.voted&bit != 0 {
			return
		}
		tr.voted |= bit
		h.votes++
		if e.Accept {
			tr.accepts++
		}
		if h.stage == txn.StageAccepted {
			h.stage = txn.StageInFlight
			h.db.inst.stage(txn.StageInFlight)
		}
		h.session.pred.ObserveVote(e.Key, e.Region, e.Accept, e.Elapsed)
		evKind = obs.EvVote
	case mdcc.KindFallback:
		if tr := h.track(e.Key); tr != nil {
			tr.fellBack = true
		}
		evKind = obs.EvFallback
	case mdcc.KindOptionLearned:
		tr := h.track(e.Key)
		if tr == nil || tr.learned != 0 {
			return
		}
		if e.Accept {
			tr.learned = 1
		} else {
			tr.learned = -1
		}
		h.learnedN++
		if tr.fellBack {
			h.session.pred.ObserveClassicResult(e.Key, e.Accept)
		}
		evKind = obs.EvLearned
	}

	h.likelihood = h.session.pred.Likelihood(h.flightLocked())
	if h.db.calib != nil && len(h.samples) < maxCalibSamples {
		h.samples = append(h.samples, h.likelihood)
	}
	if h.db.tracer != nil {
		note := ""
		if e.Reason != mdcc.ReasonNone {
			note = e.Reason.String()
		}
		h.db.tracer.Record(h.id, obs.Event{Kind: evKind, Key: e.Key,
			Region: string(e.Region), Accept: e.Accept,
			Likelihood: h.likelihood, Note: note})
	}

	if !h.speculated && h.opts.SpeculateAt > 0 && h.likelihood >= h.opts.SpeculateAt {
		h.speculated = true
		h.stage = txn.StageSpeculative
		h.db.speculated.Add(1)
		h.db.inst.stage(txn.StageSpeculative)
		h.db.tracer.Record(h.id, obs.Event{Kind: obs.EvSpeculative, Likelihood: h.likelihood})
		h.enqueue(h.opts.OnSpeculative, h.progressLocked())
	}
	h.enqueue(h.opts.OnProgress, h.progressLocked())
}

// Decided implements mdcc.ProgressSink.
func (hs *handleSink) Decided(_ txn.ID, committed bool, err error) {
	h := (*Handle)(hs)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.terminal {
		return
	}
	h.db.inFlight[h.session.region].Add(-1)
	h.finishLocked(committed, err, false)
}

// finishLocked finalizes the transaction. Caller holds h.mu.
// submitFailed marks the rare synchronous-submit failure path.
func (h *Handle) finishLocked(committed bool, err error, submitFailed bool) {
	h.terminal = true
	if h.timer != nil {
		h.timer.Stop()
	}
	// Feed the region health tracker: a timeout signals the home region
	// cannot reach its quorum; any other outcome counts as a healthy
	// sample and decays the window back toward recovery.
	h.db.health[h.session.region].observe(errors.Is(err, mdcc.ErrTimeout))
	outcome := outcomeAborted
	if committed {
		h.stage = txn.StageCommitted
		h.db.committed.Add(1)
		h.likelihood = 1
		outcome = outcomeCommitted
	} else {
		h.stage = txn.StageAborted
		h.db.aborted.Add(1)
		h.likelihood = 0
	}
	h.outcome = txn.Outcome{
		ID: h.id, Committed: committed, Err: err,
		Submitted: h.start, Decided: h.clk.Now(), Speculated: h.speculated,
	}
	if c := h.db.admFor(h.session.region); c != nil {
		c.observeFinal(committed, h.outcome.Duration())
	}
	h.db.inst.stage(h.stage)
	h.db.inst.finished(outcome, h.outcome.Duration())
	if h.db.calib != nil && !submitFailed {
		for _, s := range h.samples {
			h.db.calib.Record(s, committed)
		}
	}
	if h.db.tracer != nil {
		note := ""
		if err != nil {
			note = err.Error()
		}
		h.db.tracer.Record(h.id, obs.Event{Kind: obs.EvFinal, Accept: committed, Note: note})
	}
	h.enqueueOutcome(h.opts.OnFinal, h.outcome)
	if h.speculated && !committed {
		h.db.apologies.Add(1)
		if h.db.inst != nil {
			h.db.inst.apologies.Inc()
		}
		h.db.tracer.Record(h.id, obs.Event{Kind: obs.EvApology})
		h.enqueueOutcome(h.opts.OnApology, h.outcome)
	}
	h.db.tracer.Finish(h.id, outcome, h.speculated)
	if h.span != 0 && !submitFailed {
		// The root span closes at the decision; the client-notify span then
		// measures how long the outcome takes to reach the application
		// (callback queue drain), recorded from the dispatch goroutine after
		// OnFinal and OnApology have run.
		decided := h.outcome.Decided
		h.spans.Add(obs.Span{
			Txn: h.id, ID: h.span, Stage: obs.StageTotal,
			Region: string(h.session.region), Start: h.start, End: decided,
		})
		h.push(func() { h.recordSpan(obs.StageClientNotify, decided, "") })
	}
	h.push(nil)
}
