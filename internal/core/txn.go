package planet

import (
	"fmt"
	"sort"

	"planet/internal/txn"
)

// write is a buffered write in a transaction.
type write struct {
	kind  txn.OpKind
	value []byte
	delta int64
}

// Txn is a transaction under construction: reads go to the local replica
// and record the observed version; writes are buffered until Commit.
// A Txn is not safe for concurrent use and must be committed at most once.
type Txn struct {
	session   *Session
	reads     map[string]int64 // key -> version observed
	writes    map[string]write
	committed bool
}

// Read returns the committed bytes of key from the local replica and
// records the observed version for optimistic validation.
func (t *Txn) Read(key string) ([]byte, error) {
	b, ver, err := t.session.ReadBytes(key)
	if err != nil {
		return nil, err
	}
	t.reads[key] = ver
	return b, nil
}

// ReadInt is Read for integer records.
func (t *Txn) ReadInt(key string) (int64, error) {
	v, ver, err := t.session.ReadInt(key)
	if err != nil {
		return 0, err
	}
	t.reads[key] = ver
	return v, nil
}

// Set buffers a physical write of key. The commit validates that the
// record version is unchanged since this transaction read it (or since Set
// was called, for blind writes).
func (t *Txn) Set(key string, value []byte) {
	if _, read := t.reads[key]; !read {
		// Blind write: capture the current version now so validation
		// spans at least the Set-to-commit window.
		if _, ver, err := t.session.ReadBytes(key); err == nil {
			t.reads[key] = ver
		} else {
			t.reads[key] = 0 // writing a new key
		}
	}
	w := write{kind: txn.OpSet, value: append([]byte(nil), value...)}
	if prev := t.writes[key]; prev.kind == txn.OpAdd && prev.delta != 0 {
		// Keep the delta so Commit can reject the Set/Add mix loudly
		// instead of silently discarding the earlier Add.
		w.delta = prev.delta
	}
	t.writes[key] = w
}

// Add buffers a commutative integer delta on key; concurrent Adds commit
// together as long as the record's integrity bounds hold. Multiple Adds in
// one transaction accumulate.
func (t *Txn) Add(key string, delta int64) {
	w := t.writes[key]
	if w.kind == txn.OpSet && (w.value != nil || w.delta != 0) {
		// Set followed by Add is flagged at Commit; record the Add so
		// the conflict is visible there.
		t.writes[key] = write{kind: txn.OpAdd, delta: delta, value: w.value}
		return
	}
	w.kind = txn.OpAdd
	w.delta += delta
	t.writes[key] = w
}

// WriteCount reports the number of buffered writes (distinct keys).
func (t *Txn) WriteCount() int { return len(t.writes) }

// Keys returns the transaction's write set in sorted order.
func (t *Txn) Keys() []string {
	keys := make([]string, 0, len(t.writes))
	for k := range t.writes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ops converts the buffered writes to protocol options.
func (t *Txn) ops() ([]txn.Op, error) {
	ops := make([]txn.Op, 0, len(t.writes))
	for _, key := range t.Keys() {
		w := t.writes[key]
		switch w.kind {
		case txn.OpSet:
			if w.delta != 0 {
				return nil, fmt.Errorf("planet: key %q mixes Set and Add in one transaction", key)
			}
			ops = append(ops, txn.Op{Kind: txn.OpSet, Key: key, Value: w.value, ReadVersion: t.reads[key]})
		case txn.OpAdd:
			if w.value != nil {
				return nil, fmt.Errorf("planet: key %q mixes Set and Add in one transaction", key)
			}
			ops = append(ops, txn.Op{Kind: txn.OpAdd, Key: key, Delta: w.delta})
		}
	}
	return ops, nil
}
