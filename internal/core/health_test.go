package planet

// White-box tests for the robustness layer: the per-region health ring,
// speculation shedding, context-aware waits, and retry backoff shaping.

import (
	"context"
	"errors"
	"testing"
	"time"

	"planet/internal/cluster"
	"planet/internal/regions"
)

func TestRegionHealthWindow(t *testing.T) {
	h := newRegionHealth(HealthPolicy{Window: 4, MaxTimeoutRate: 0.5, MinSamples: 2})

	if h.degraded() {
		t.Fatal("empty tracker reported degraded")
	}
	h.observe(true)
	if h.degraded() {
		t.Fatal("degraded below MinSamples")
	}
	h.observe(true)
	if !h.degraded() {
		t.Fatal("2/2 timeouts at threshold 0.5 not degraded")
	}

	// Healthy outcomes push the rate down; once the window slides past the
	// timeouts the region recovers.
	for i := 0; i < 4; i++ {
		h.observe(false)
	}
	if h.degraded() {
		rate, n := h.rate()
		t.Fatalf("still degraded after recovery: rate=%.2f n=%d", rate, n)
	}
	if rate, n := h.rate(); rate != 0 || n != 4 {
		t.Fatalf("rate=%.2f n=%d, want 0.00 n=4 (timeouts evicted)", rate, n)
	}

	// A nil tracker (health disabled) is inert.
	var nilH *regionHealth
	nilH.observe(true)
	if nilH.degraded() {
		t.Fatal("nil tracker degraded")
	}
}

// openWhiteboxDB builds a compressed-time cluster + DB inside the package,
// where tests can reach unexported state like db.health.
func openWhiteboxDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		TimeScale:     0.01,
		Seed:          7,
		CommitTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		c.Quiesce(2 * time.Second)
	})
	cfg.Cluster = c
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSpeculationShedWhenDegraded(t *testing.T) {
	db := openWhiteboxDB(t, Config{
		Health: HealthPolicy{Window: 8, MaxTimeoutRate: 0.5, MinSamples: 4},
	})
	db.Cluster().SeedInt("n", 0, 0, 1<<30)
	region := regions.California
	s, err := db.Session(region)
	if err != nil {
		t.Fatal(err)
	}

	commit := func() (*Handle, bool) {
		t.Helper()
		tx := s.Begin()
		tx.Add("n", 1)
		spec := false
		h, err := tx.Commit(CommitOptions{
			SpeculateAt:   0.01, // any likelihood clears this
			OnSpeculative: func(Progress) { spec = true },
		})
		if err != nil {
			t.Fatal(err)
		}
		out := h.Wait()
		if !out.Committed {
			t.Fatalf("commit failed: %v", out.Err)
		}
		return h, spec
	}

	// Healthy region: the near-zero threshold speculates immediately.
	if _, spec := commit(); !spec {
		t.Fatal("healthy region did not speculate")
	}

	// Saturate the region's window with timeouts: degraded.
	for i := 0; i < 8; i++ {
		db.health[region].observe(true)
	}
	if !db.RegionDegraded(region) {
		t.Fatal("region not degraded after all-timeout window")
	}
	if db.RegionDegraded(regions.Ireland) {
		t.Fatal("unrelated region degraded")
	}
	h, spec := commit()
	if spec {
		t.Fatal("degraded region still speculated")
	}
	if h.Wait().Speculated {
		t.Fatal("outcome marked speculated after shed")
	}
	if got := db.SpeculationShed(); got != 1 {
		t.Fatalf("SpeculationShed=%d, want 1", got)
	}

	// The successful commits above (plus healthy observations) wash the
	// timeouts out of the window; speculation comes back.
	for i := 0; i < 8; i++ {
		db.health[region].observe(false)
	}
	if _, spec := commit(); !spec {
		t.Fatal("recovered region did not speculate")
	}
}

func TestWaitCtxAbandonsWait(t *testing.T) {
	db := openWhiteboxDB(t, Config{})
	db.Cluster().SeedBytes("k", []byte("v0"))
	s, err := db.Session(regions.California)
	if err != nil {
		t.Fatal(err)
	}

	// Blackhole the network so no votes return and the decision stalls
	// until the commit timeout.
	db.Cluster().Net.SetLossRate(1)

	tx := s.Begin()
	tx.Set("k", []byte("v1"))
	h, err := tx.Commit(CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := h.WaitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitCtx err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("WaitCtx did not return promptly on cancellation")
	}

	// The transaction kept running and still reaches its (timeout) end;
	// Wait after an abandoned WaitCtx still works.
	out := h.Wait()
	if out.Committed {
		t.Fatal("blackholed commit committed")
	}

	// With a live network and no cancellation, WaitCtx == Wait.
	db.Cluster().Net.SetLossRate(0)
	tx = s.Begin()
	tx.Set("k", []byte("v2"))
	h, err = tx.Commit(CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err = h.WaitCtx(context.Background())
	if err != nil || !out.Committed {
		t.Fatalf("WaitCtx = (%+v, %v), want committed", out, err)
	}
}

func TestRunCtxCancelled(t *testing.T) {
	db := openWhiteboxDB(t, Config{})
	db.Cluster().SeedBytes("k", []byte("v0"))
	s, err := db.Session(regions.California)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err = s.RunCtx(ctx, 3, func(tx *Txn) error {
		calls++
		tx.Set("k", []byte("x"))
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx err = %v, want Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("closure ran %d times under a cancelled context", calls)
	}
}

func TestBackoffShape(t *testing.T) {
	db := openWhiteboxDB(t, Config{})
	s, err := db.Session(regions.California)
	if err != nil {
		t.Fatal(err)
	}
	scale := db.Cluster().TimeScale()
	for attempt := 0; attempt < 12; attempt++ {
		base := retryBackoffBase << uint(attempt)
		if base > retryBackoffMax || base <= 0 {
			base = retryBackoffMax
		}
		lo := time.Duration(float64(base) * 0.5 * scale)
		hi := time.Duration(float64(base) * 1.5 * scale)
		for trial := 0; trial < 8; trial++ {
			got := s.backoff(attempt)
			if got < lo || got > hi {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", attempt, got, lo, hi)
			}
		}
	}
	// Jitter actually varies.
	a, b := s.backoff(3), s.backoff(3)
	for i := 0; i < 16 && a == b; i++ {
		b = s.backoff(3)
	}
	if a == b {
		t.Error("backoff jitter produced identical delays 17 times")
	}
}
