package planet_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/regions"
	"planet/internal/txn"
)

func TestQuorumReadSeesPropagatedWrites(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedBytes("k", []byte("v0"))
	s := session(t, db, regions.California)

	tx := s.Begin()
	tx.Set("k", []byte("v1"))
	h, err := tx.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if o := h.Wait(); !o.Committed {
		t.Fatalf("commit failed: %v", o)
	}
	if !db.Cluster().Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}

	// Quorum read from the farthest region sees the write.
	far := session(t, db, regions.Singapore)
	v, ver, err := far.QuorumReadBytes("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v1" || ver != 1 {
		t.Errorf("quorum read %q v%d, want v1 v1", v, ver)
	}
}

func TestQuorumReadFresherThanStaleLocal(t *testing.T) {
	// Partition Singapore so its local replica misses a commit, then show
	// the quorum read (which doesn't need Singapore) still returns the
	// fresh value while the local read is stale.
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedInt("n", 1, 0, 100)
	db.Cluster().Quiesce(5 * time.Second)

	db.Cluster().Net.SetRegionDown(regions.Singapore, true)
	s := session(t, db, regions.California)
	tx := s.Begin()
	tx.Add("n", 5)
	h, err := tx.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if o := h.Wait(); !o.Committed {
		t.Fatalf("commit with one region down failed: %v", o)
	}
	if !db.Cluster().Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	db.Cluster().Net.SetRegionDown(regions.Singapore, false)

	sg := session(t, db, regions.Singapore)
	local, _, err := sg.ReadInt("n")
	if err != nil {
		t.Fatal(err)
	}
	if local != 1 {
		t.Fatalf("expected stale local read 1 at partitioned replica, got %d", local)
	}
	quorum, _, err := sg.QuorumReadInt("n")
	if err != nil {
		t.Fatal(err)
	}
	if quorum != 6 {
		t.Errorf("quorum read %d, want fresh value 6", quorum)
	}
}

func TestQuorumReadMissingKey(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	s := session(t, db, regions.Ireland)
	if _, _, err := s.QuorumReadBytes("ghost"); !errors.Is(err, planet.ErrKeyNotFound) {
		t.Errorf("missing key error = %v", err)
	}
}

func TestQuorumReadTimesOutWithoutMajority(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedBytes("k", []byte("v"))
	// Isolate three of five regions: no majority can answer.
	db.Cluster().Net.SetRegionDown(regions.Virginia, true)
	db.Cluster().Net.SetRegionDown(regions.Ireland, true)
	db.Cluster().Net.SetRegionDown(regions.Singapore, true)
	s := session(t, db, regions.California)
	if _, _, err := s.QuorumReadBytes("k"); err == nil {
		t.Error("quorum read succeeded without a majority")
	}
}

func TestRunRetriesConflicts(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedInt("counter", 0, 0, 1<<40)

	// Concurrent increments via physical writes conflict; Run's retry
	// loop must still complete every one of them exactly once.
	const workers, each = 6, 4
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		region := db.Cluster().Regions()[w%5]
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := db.Session(region)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < each; i++ {
				_, err := s.Run(20, func(tx *planet.Txn) error {
					v, err := tx.ReadInt("counter")
					if err != nil {
						return err
					}
					tx.Set("counter", []byte(fmt.Sprintf("%d", v)))
					return nil
				})
				if err != nil {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	st := db.Stats()
	if st.Committed == 0 {
		t.Fatal("nothing committed")
	}
	// Every worker either committed (possibly after retries) or exhausted
	// 20 attempts; with 20 attempts on 6 workers, failures should be rare.
	if failures.Load() > workers*each/2 {
		t.Errorf("%d/%d Run calls exhausted retries", failures.Load(), workers*each)
	}
	if st.Aborted == 0 {
		t.Log("no conflicts encountered (racy but unusual)")
	}
}

func TestRunClosureErrorNotRetried(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	s := session(t, db, regions.California)
	calls := 0
	boom := errors.New("boom")
	_, err := s.Run(5, func(*planet.Txn) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err=%v", err)
	}
	if calls != 1 {
		t.Errorf("closure called %d times, want 1", calls)
	}
}

func TestRunBoundViolationNotRetried(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedInt("stock", 1, 0, 10)
	s := session(t, db, regions.Tokyo)
	o, err := s.Run(5, func(tx *planet.Txn) error {
		tx.Add("stock", -5)
		return nil
	})
	if err == nil || o.Committed {
		t.Errorf("bound violation retried to success: %v %v", o, err)
	}
	if got := db.Stats().Submitted; got != 1 {
		t.Errorf("submitted %d times, want 1 (no retry)", got)
	}
}

func TestAdmissionProbeFraction(t *testing.T) {
	db := openTestDB(t, planet.Config{
		Admission: planet.AdmissionPolicy{MinLikelihood: 0.9, ProbeFraction: 0.5},
	}, cluster.Config{})
	db.Cluster().SeedBytes("hot", []byte("v"))

	// Poison the hot key while keeping the global rate healthy.
	pred := db.Predictor(regions.California)
	for i := 0; i < 200; i++ {
		pred.ObserveVote("hot", regions.Virginia, false, 40*time.Millisecond)
		for j := 0; j < 10; j++ {
			pred.ObserveVote("other", regions.Virginia, true, 40*time.Millisecond)
		}
	}

	s := session(t, db, regions.California)
	admitted := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		tx := s.Begin()
		tx.Set("hot", []byte("w"))
		h, err := tx.Commit(planet.CommitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if o := h.Wait(); !o.Rejected {
			admitted++
		}
	}
	// Probe fraction 0.5: roughly half the doomed transactions still run.
	if admitted < trials/4 || admitted > trials*3/4 {
		t.Errorf("probes admitted %d/%d, want ≈%d", admitted, trials, trials/2)
	}
}

func TestStatsAccounting(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedInt("n", 0, 0, 100)
	s := session(t, db, regions.Virginia)

	for i := 0; i < 5; i++ {
		tx := s.Begin()
		tx.Add("n", 1)
		h, err := tx.Commit(planet.CommitOptions{SpeculateAt: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		h.Wait()
	}
	st := db.Stats()
	if st.Submitted != 5 || st.Committed != 5 {
		t.Errorf("stats %+v", st)
	}
	if st.Apologies != 0 {
		t.Errorf("apologies on committed txns: %+v", st)
	}
	if st.Speculated == 0 {
		t.Error("no speculation recorded")
	}
}

func TestHandleProgressSnapshot(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedBytes("k", []byte("v"))
	s := session(t, db, regions.California)
	tx := s.Begin()
	tx.Set("k", []byte("w"))
	h, err := tx.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := h.Progress()
	if p.OptionsTotal != 1 || p.VotesExpected != 5 {
		t.Errorf("snapshot %+v", p)
	}
	o := h.Wait()
	if !o.Committed {
		t.Fatalf("outcome %v", o)
	}
	final := h.Progress()
	if final.Stage != txn.StageCommitted || final.Likelihood != 1 {
		t.Errorf("final snapshot %+v", final)
	}
	if final.String() == "" {
		t.Error("empty progress string")
	}
}

func TestOutcomeViaDoneChannel(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	s := session(t, db, regions.Ireland)
	tx := s.Begin()
	h, err := tx.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("Done never closed")
	}
	if o := h.Wait(); !o.Committed {
		t.Errorf("read-only txn outcome %v", o)
	}
}
