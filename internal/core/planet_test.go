package planet_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/regions"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// openTestDB builds a five-region cluster with compressed time and a DB.
func openTestDB(t *testing.T, cfg planet.Config, ccfg cluster.Config) *planet.DB {
	t.Helper()
	if ccfg.TimeScale == 0 {
		ccfg.TimeScale = 0.01
	}
	if ccfg.Seed == 0 {
		ccfg.Seed = 11
	}
	if ccfg.CommitTimeout == 0 {
		// Generous timeout: at test scale the production default is a
		// 50ms real-time budget, which flakes on loaded machines.
		ccfg.CommitTimeout = 60 * time.Second
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		c.Quiesce(2 * time.Second)
	})
	cfg.Cluster = c
	db, err := planet.Open(cfg)
	if err != nil {
		t.Fatalf("planet.Open: %v", err)
	}
	return db
}

func session(t *testing.T, db *planet.DB, r simnet.Region) *planet.Session {
	t.Helper()
	s, err := db.Session(r)
	if err != nil {
		t.Fatalf("Session(%s): %v", r, err)
	}
	return s
}

func TestCallbackOrderAndStages(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedBytes("k", []byte("v0"))
	s := session(t, db, regions.California)

	tx := s.Begin()
	if _, err := tx.Read("k"); err != nil {
		t.Fatalf("Read: %v", err)
	}
	tx.Set("k", []byte("v1"))

	var mu sync.Mutex
	var order []string
	record := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	h, err := tx.Commit(planet.CommitOptions{
		SpeculateAt:   0.90,
		OnAccept:      func(planet.Progress) { record("accept") },
		OnSpeculative: func(p planet.Progress) { record("speculative") },
		OnFinal:       func(txn.Outcome) { record("final") },
		OnApology:     func(txn.Outcome) { record("apology") },
	})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	o := h.Wait()
	if !o.Committed {
		t.Fatalf("want commit, got %v", o)
	}
	if h.Stage() != txn.StageCommitted {
		t.Errorf("stage = %v, want committed", h.Stage())
	}

	mu.Lock()
	defer mu.Unlock()
	if len(order) < 2 || order[0] != "accept" || order[len(order)-1] != "final" {
		t.Fatalf("callback order %v: want accept first, final last", order)
	}
	for _, name := range order {
		if name == "apology" {
			t.Error("apology fired for a committed transaction")
		}
	}
}

func TestLikelihoodRisesToOneOnCommit(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedBytes("k", []byte("v0"))
	s := session(t, db, regions.Virginia)

	var lastLikelihood atomic.Uint64 // bits of float64
	tx := s.Begin()
	tx.Set("k", []byte("v1"))
	h, err := tx.Commit(planet.CommitOptions{
		OnProgress: func(p planet.Progress) {
			lastLikelihood.Store(uint64(p.Likelihood * 1e6))
		},
	})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	o := h.Wait()
	if !o.Committed {
		t.Fatalf("want commit, got %v", o)
	}
	if h.Likelihood() != 1 {
		t.Errorf("final likelihood = %v, want 1", h.Likelihood())
	}
}

func TestGuaranteedApology(t *testing.T) {
	// Force an abort after speculation: speculate at a low threshold on a
	// transaction that must abort on a version conflict at every replica.
	// With a fresh predictor the prior is optimistic, so likelihood starts
	// high and the speculation fires at submit-time vote flow; the fatal
	// rejection then aborts, and the apology must follow.
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedBytes("k", []byte("v0"))
	s := session(t, db, regions.Tokyo)

	// Move the version forward so the stale write below conflicts.
	tx0 := s.Begin()
	tx0.Set("k", []byte("v1"))
	h0, err := tx0.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatalf("setup commit: %v", err)
	}
	if o := h0.Wait(); !o.Committed {
		t.Fatalf("setup commit failed: %v", o)
	}

	// Stale transaction: speculates optimistically off the prior, then
	// aborts. SpeculateAt is below the fresh-predictor prior so the
	// speculative callback fires on the accept-stage likelihood before
	// any reject arrives — the "guess" that demands an apology.
	var speculated, apologized atomic.Bool
	staleTx := s.Begin()
	staleTx.Set("k", []byte("v2"))
	// Rewind the recorded read version to force a conflict.
	h, err := commitWithStaleVersion(t, db, s, "k", []byte("v2"), planet.CommitOptions{
		SpeculateAt:   0.5,
		OnSpeculative: func(planet.Progress) { speculated.Store(true) },
		OnApology:     func(txn.Outcome) { apologized.Store(true) },
	})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	_ = staleTx
	o := h.Wait()
	if o.Committed {
		t.Fatal("stale write committed")
	}
	if speculated.Load() && !apologized.Load() {
		t.Fatal("speculated then aborted without an apology")
	}
	if !speculated.Load() && apologized.Load() {
		t.Fatal("apology without speculation")
	}
	if o.Speculated != speculated.Load() {
		t.Errorf("outcome.Speculated=%v, callbacks saw %v", o.Speculated, speculated.Load())
	}
}

// commitWithStaleVersion builds a transaction whose Set carries a stale
// read version (the seed version 0) even though the record has moved on.
func commitWithStaleVersion(t *testing.T, db *planet.DB, s *planet.Session, key string, val []byte, opts planet.CommitOptions) (*planet.Handle, error) {
	t.Helper()
	if !db.Cluster().Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce before staleness setup")
	}
	tx := s.Begin()
	// Set without Read records the *current* version; to force staleness
	// we commit against a version we know is outdated by writing through
	// a second committed transaction in between.
	tx.Set(key, val)
	// Now advance the record underneath the buffered write.
	tx2 := s.Begin()
	tx2.Set(key, []byte("interloper"))
	h2, err := tx2.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatalf("interloper commit: %v", err)
	}
	if o := h2.Wait(); !o.Committed {
		t.Fatalf("interloper did not commit: %v", o)
	}
	if !db.Cluster().Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}
	return tx.Commit(opts)
}

func TestAdmissionControlMaxInFlight(t *testing.T) {
	db := openTestDB(t, planet.Config{
		Admission: planet.AdmissionPolicy{MaxInFlight: 1},
	}, cluster.Config{})
	db.Cluster().SeedInt("n", 0, -1000, 1000)
	s := session(t, db, regions.Ireland)

	// First transaction occupies the slot; submit a second immediately.
	tx1 := s.Begin()
	tx1.Add("n", 1)
	h1, err := tx1.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatalf("Commit 1: %v", err)
	}
	tx2 := s.Begin()
	tx2.Add("n", 1)
	h2, err := tx2.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatalf("Commit 2: %v", err)
	}
	o2 := h2.Wait()
	if !o2.Rejected || !errors.Is(o2.Err, planet.ErrAdmission) {
		t.Fatalf("second txn: want admission rejection, got %v", o2)
	}
	if h2.Stage() != txn.StageRejected {
		t.Errorf("stage = %v, want rejected", h2.Stage())
	}
	if o1 := h1.Wait(); !o1.Committed {
		t.Fatalf("first txn should commit, got %v", o1)
	}
	st := db.Stats()
	if st.Rejected != 1 || st.Committed != 1 {
		t.Errorf("stats = %+v, want 1 committed / 1 rejected", st)
	}
}

func TestAdmissionControlLikelihoodThreshold(t *testing.T) {
	db := openTestDB(t, planet.Config{
		Admission: planet.AdmissionPolicy{MinLikelihood: 0.9},
		Calibrate: true,
	}, cluster.Config{})
	db.Cluster().SeedBytes("hot", []byte("v"))
	s := session(t, db, regions.California)

	// Poison the predictor: rejected votes on "hot" drive its accept
	// probability down, after which admission must reject up front.
	// Healthy traffic on other keys keeps the global rate high, so the
	// rejection is key-targeted.
	pred := db.Predictor(regions.California)
	for i := 0; i < 200; i++ {
		pred.ObserveVote("hot", regions.Virginia, false, 40*time.Millisecond)
		for j := 0; j < 10; j++ {
			pred.ObserveVote("cold", regions.Virginia, true, 40*time.Millisecond)
		}
	}
	if p := pred.LikelihoodAtSubmit([]string{"hot"}); p > 0.5 {
		t.Fatalf("poisoned prior = %v, want low", p)
	}

	tx := s.Begin()
	tx.Set("hot", []byte("w"))
	h, err := tx.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	o := h.Wait()
	if !o.Rejected {
		t.Fatalf("want admission rejection, got %v", o)
	}
	// A cold key sails through.
	db.Cluster().SeedBytes("cold", []byte("v"))
	tx2 := s.Begin()
	tx2.Set("cold", []byte("w"))
	h2, err := tx2.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatalf("Commit cold: %v", err)
	}
	if o2 := h2.Wait(); !o2.Committed {
		t.Fatalf("cold txn should commit, got %v", o2)
	}
}

func TestDeadlineCallbackFiresWhileRunning(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedBytes("k", []byte("v"))
	s := session(t, db, regions.Singapore)

	var deadlineFired atomic.Bool
	tx := s.Begin()
	tx.Set("k", []byte("w"))
	h, err := tx.Commit(planet.CommitOptions{
		Deadline:   50 * time.Microsecond, // far below one scaled RTT
		OnDeadline: func(p planet.Progress) { deadlineFired.Store(true) },
	})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	o := h.Wait()
	if !o.Committed {
		t.Fatalf("txn should still commit after deadline, got %v", o)
	}
	if !deadlineFired.Load() {
		t.Error("deadline callback never fired")
	}
}

func TestReadYourCluster(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedInt("stock", 10, 0, 100)
	s := session(t, db, regions.Virginia)

	v, _, err := s.ReadInt("stock")
	if err != nil || v != 10 {
		t.Fatalf("ReadInt = %d, %v; want 10", v, err)
	}
	if _, _, err := s.ReadBytes("missing"); !errors.Is(err, planet.ErrKeyNotFound) {
		t.Fatalf("missing key: %v, want ErrKeyNotFound", err)
	}
}

func TestMixedSetAddRejected(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedInt("n", 0, 0, 10)
	s := session(t, db, regions.California)

	tx := s.Begin()
	tx.Set("n", []byte("x"))
	tx.Add("n", 1)
	if _, err := tx.Commit(planet.CommitOptions{}); err == nil {
		t.Fatal("Set-then-Add committed")
	}

	// The reverse order must fail just as loudly (not silently drop the Add).
	tx2 := s.Begin()
	tx2.Add("n", 1)
	tx2.Set("n", []byte("x"))
	if _, err := tx2.Commit(planet.CommitOptions{}); err == nil {
		t.Fatal("Add-then-Set committed")
	}
}

func TestDoubleCommitRejected(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	s := session(t, db, regions.California)
	tx := s.Begin()
	if _, err := tx.Commit(planet.CommitOptions{}); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	if _, err := tx.Commit(planet.CommitOptions{}); err == nil {
		t.Fatal("second commit accepted")
	}
}

func TestConcurrentSessionsManyTransactions(t *testing.T) {
	db := openTestDB(t, planet.Config{Calibrate: true}, cluster.Config{})
	for i := 0; i < 16; i++ {
		db.Cluster().SeedInt(fmt.Sprintf("acct-%d", i), 1000, 0, 1_000_000)
	}

	var wg sync.WaitGroup
	var committed atomic.Uint64
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			region := db.Cluster().Regions()[w%5]
			s, err := db.Session(region)
			if err != nil {
				t.Errorf("Session: %v", err)
				return
			}
			for i := 0; i < 10; i++ {
				tx := s.Begin()
				tx.Add(fmt.Sprintf("acct-%d", (w*10+i)%16), -1)
				tx.Add(fmt.Sprintf("acct-%d", (w*10+i+7)%16), 1)
				h, err := tx.Commit(planet.CommitOptions{})
				if err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
				if o := h.Wait(); o.Committed {
					committed.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	if committed.Load() == 0 {
		t.Fatal("no transaction committed")
	}
	if !db.Cluster().Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}
	// Money conservation: commutative deltas are ±1 pairs, so the total
	// must still be 16 × 1000 at every replica.
	for _, r := range db.Cluster().Regions() {
		var total int64
		for i := 0; i < 16; i++ {
			v, _, err := mustRead(db, r, fmt.Sprintf("acct-%d", i))
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			total += v
		}
		if total != 16000 {
			t.Errorf("%s: total=%d, want 16000", r, total)
		}
	}
}

func mustRead(db *planet.DB, r simnet.Region, key string) (int64, int64, error) {
	s, err := db.Session(r)
	if err != nil {
		return 0, 0, err
	}
	return s.ReadInt(key)
}
