package planet

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"planet/internal/predictor"
	"planet/internal/vclock"
)

// AdaptiveAdmission configures the per-region admission feedback
// controller. Instead of a hand-tuned static AdmissionPolicy, the
// controller re-derives the likelihood threshold and in-flight bound once
// per epoch from what the region actually experienced: goodput, abort
// rate, the p99 commit latency against a target SLO, and the distribution
// of predicted commit likelihoods across the offered load.
//
// Control laws, evaluated each epoch per region:
//
//   - MaxInFlight follows AIMD against the latency SLO: while the epoch's
//     p99 commit latency stays within TargetP99 the window grows
//     additively; when it breaches, the window contracts multiplicatively.
//   - MinLikelihood is derived from a shed fraction: when the abort rate
//     exceeds AbortHigh the controller sheds a larger fraction of the
//     offered load, when it falls below AbortLow it sheds less. The
//     fraction is converted to a threshold by taking that quantile of the
//     epoch's observed prior likelihoods, so the bar lands exactly where
//     it cuts the intended share of traffic regardless of how the
//     predictor's output distribution shifts.
//   - The speculation floor rises and falls with the abort rate: under a
//     high-abort regime, speculating at a permissive workload-chosen
//     threshold mostly manufactures apologies, so the controller raises
//     the effective SpeculateAt for every transaction in the region.
//   - A fully stalled epoch (rejections but zero decisions) reopens the
//     window multiplicatively and drops the shed fraction — the
//     controller never wedges itself shut.
//
// Determinism: the epoch timer chains on the region's own partition
// clock, every counter below is fed from handle code that runs on that
// same partition, and the quantile sketches are insertion-order-free —
// so identically-seeded virtual-time runs make identical decisions.
type AdaptiveAdmission struct {
	// Enabled turns the controller on.
	Enabled bool
	// Epoch is the controller cadence (emulator time, default 250ms).
	Epoch time.Duration
	// TargetP99 is the commit-latency SLO the in-flight AIMD window
	// tracks (default 2s).
	TargetP99 time.Duration
	// AbortHigh is the abort-rate ceiling above which admission tightens
	// (default 0.15); AbortLow the floor below which it relaxes (0.05).
	AbortHigh float64
	AbortLow  float64
	// MinInFlight / MaxInFlightCap bound the AIMD window (16 / 4096).
	MinInFlight    int
	MaxInFlightCap int
	// LikelihoodCeil caps the adaptive MinLikelihood so the controller
	// can never reject everything on likelihood alone (default 0.9).
	LikelihoodCeil float64
	// ProbeFraction overrides the static policy's probe escape while the
	// controller is active (default 0.02).
	ProbeFraction float64
	// MinDecided is the fewest decided transactions an epoch needs before
	// its statistics move any knob (default 16) — thin epochs hold steady
	// instead of chasing noise.
	MinDecided int
}

func (a AdaptiveAdmission) withDefaults() AdaptiveAdmission {
	if a.Epoch <= 0 {
		a.Epoch = 250 * time.Millisecond
	}
	if a.TargetP99 <= 0 {
		a.TargetP99 = 2 * time.Second
	}
	if a.AbortHigh <= 0 {
		a.AbortHigh = 0.15
	}
	if a.AbortLow <= 0 {
		a.AbortLow = 0.05
	}
	if a.MinInFlight <= 0 {
		a.MinInFlight = 16
	}
	if a.MaxInFlightCap <= 0 {
		a.MaxInFlightCap = 4096
	}
	if a.LikelihoodCeil <= 0 {
		a.LikelihoodCeil = 0.9
	}
	if a.ProbeFraction <= 0 {
		a.ProbeFraction = 0.02
	}
	if a.MinDecided <= 0 {
		a.MinDecided = 16
	}
	return a
}

// aimdStep is the additive in-flight window growth per within-SLO epoch.
const aimdStep = 8

// shedMax bounds the shed fraction: some probe share always survives.
const shedMax = 0.95

// AdmissionState is a snapshot of one region's controller (tests,
// experiments, gauges).
type AdmissionState struct {
	MinLikelihood float64
	MaxInFlight   int
	SpecFloor     float64
	ShedFraction  float64
	Epochs        uint64
}

// admissionCtl is one region's controller. Hot-path reads (every Commit)
// go through the published atomics; epoch bookkeeping and the sketches
// live behind mu.
type admissionCtl struct {
	cfg AdaptiveAdmission
	clk vclock.Clock

	// Published control outputs, read lock-free on the commit path.
	minLikelihood atomic.Uint64 // Float64bits
	maxInFlight   atomic.Int64
	specFloor     atomic.Uint64 // Float64bits

	mu          sync.Mutex
	epCommitted uint64
	epAborted   uint64
	epRejected  uint64
	shed        float64
	spec        float64
	epochs      uint64
	lat         *predictor.Sketch // commit latencies this epoch
	priors      *predictor.Sketch // offered-load prior likelihoods this epoch

	stopped atomic.Bool
	timer   vclock.Timer // guarded by mu
}

func newAdmissionCtl(clk vclock.Clock, cfg AdaptiveAdmission, static AdmissionPolicy) *admissionCtl {
	cfg = cfg.withDefaults()
	c := &admissionCtl{
		cfg:    cfg,
		clk:    clk,
		lat:    predictor.NewDurationSketch(time.Millisecond, 2*time.Minute, 64),
		priors: predictor.NewUnitSketch(64),
	}
	// Seed from the static policy so the first epochs behave like the
	// baseline until real feedback arrives.
	mif := static.MaxInFlight
	if mif <= 0 {
		mif = 256
	}
	if mif < cfg.MinInFlight {
		mif = cfg.MinInFlight
	}
	if mif > cfg.MaxInFlightCap {
		mif = cfg.MaxInFlightCap
	}
	c.maxInFlight.Store(int64(mif))
	c.minLikelihood.Store(math.Float64bits(static.MinLikelihood))
	return c
}

// start schedules the first epoch tick on the region's partition clock.
func (c *admissionCtl) start() {
	c.mu.Lock()
	c.timer = c.clk.AfterFunc(c.cfg.Epoch, c.step)
	c.mu.Unlock()
}

// stop halts the epoch chain. Only needed when a real-time deployment
// outlives its workload; a virtual-time chain dies with the scheduler.
func (c *admissionCtl) stop() {
	c.stopped.Store(true)
	c.mu.Lock()
	if c.timer != nil {
		c.timer.Stop()
	}
	c.mu.Unlock()
}

// policy returns the static policy with the controller's published
// thresholds substituted in.
func (c *admissionCtl) policy(static AdmissionPolicy) AdmissionPolicy {
	static.MinLikelihood = math.Float64frombits(c.minLikelihood.Load())
	static.MaxInFlight = int(c.maxInFlight.Load())
	static.ProbeFraction = c.cfg.ProbeFraction
	return static
}

// specFloorVal returns the current speculation floor.
func (c *admissionCtl) specFloorVal() float64 {
	return math.Float64frombits(c.specFloor.Load())
}

// observePrior records one offered transaction's predicted commit
// likelihood (admitted or not — the shed quantile must see the whole
// offered distribution).
func (c *admissionCtl) observePrior(p float64) {
	c.mu.Lock()
	c.priors.Observe(p)
	c.mu.Unlock()
}

// observeReject records an admission rejection.
func (c *admissionCtl) observeReject() {
	c.mu.Lock()
	c.epRejected++
	c.mu.Unlock()
}

// observeFinal records a decided transaction and its commit latency.
func (c *admissionCtl) observeFinal(committed bool, d time.Duration) {
	c.mu.Lock()
	if committed {
		c.epCommitted++
	} else {
		c.epAborted++
	}
	c.lat.ObserveDuration(d)
	c.mu.Unlock()
}

// state snapshots the controller.
func (c *admissionCtl) state() AdmissionState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return AdmissionState{
		MinLikelihood: math.Float64frombits(c.minLikelihood.Load()),
		MaxInFlight:   int(c.maxInFlight.Load()),
		SpecFloor:     math.Float64frombits(c.specFloor.Load()),
		ShedFraction:  c.shed,
		Epochs:        c.epochs,
	}
}

// step runs one controller epoch and reschedules itself.
func (c *admissionCtl) step() {
	if c.stopped.Load() {
		return
	}
	c.mu.Lock()
	com, ab, rej := c.epCommitted, c.epAborted, c.epRejected
	c.epCommitted, c.epAborted, c.epRejected = 0, 0, 0
	decided := com + ab
	var p99 time.Duration
	if c.lat.Count() > 0 {
		p99 = c.lat.QuantileDuration(0.99)
	}
	priorN := c.priors.Count()

	mif := c.maxInFlight.Load()
	shed := c.shed
	spec := c.spec
	switch {
	case decided == 0 && rej > 0:
		// Stalled shut: load was offered, everything was rejected, nothing
		// decided. Reopen multiplicatively and shed less.
		mif = min64(int64(c.cfg.MaxInFlightCap), mif*2)
		shed = math.Max(0, shed-0.10)
		spec = math.Max(0, spec-0.10)
	case decided >= uint64(c.cfg.MinDecided):
		abortRate := float64(ab) / float64(decided)
		if p99 > c.cfg.TargetP99 {
			mif = max64(int64(c.cfg.MinInFlight), mif*7/10)
		} else {
			mif = min64(int64(c.cfg.MaxInFlightCap), mif+aimdStep)
		}
		if abortRate > c.cfg.AbortHigh {
			shed = math.Min(shedMax, shed+0.05)
			spec = math.Min(shedMax, spec+0.10)
		} else if abortRate < c.cfg.AbortLow {
			shed = math.Max(0, shed-0.05)
			spec = math.Max(0, spec-0.10)
		}
	}
	c.shed = shed
	c.spec = spec
	c.maxInFlight.Store(mif)

	ml := 0.0
	if shed > 0 {
		if priorN >= uint64(c.cfg.MinDecided) {
			ml = math.Min(c.priors.Quantile(shed), c.cfg.LikelihoodCeil)
		} else {
			// Too few offers to re-derive the quantile; hold the bar.
			ml = math.Min(math.Float64frombits(c.minLikelihood.Load()), c.cfg.LikelihoodCeil)
		}
	}
	c.minLikelihood.Store(math.Float64bits(ml))
	c.specFloor.Store(math.Float64bits(spec))

	c.lat.Reset()
	c.priors.Reset()
	c.epochs++
	c.timer = c.clk.AfterFunc(c.cfg.Epoch, c.step)
	c.mu.Unlock()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
