package planet

// White-box tests for the adaptive admission controller: the per-epoch
// control laws in isolation, and end-to-end determinism of a run with the
// controller enabled on a virtual-time cluster.

import (
	"testing"
	"time"

	"planet/internal/cluster"
	"planet/internal/regions"
	"planet/internal/vclock"
)

// lawCtl builds a controller on a standalone virtual clock and never
// starts the epoch chain — the test drives step() by hand.
func lawCtl(t *testing.T, cfg AdaptiveAdmission, static AdmissionPolicy) *admissionCtl {
	t.Helper()
	v := vclock.NewVirtual()
	t.Cleanup(v.Shutdown)
	return newAdmissionCtl(v, cfg, static)
}

func TestAdmissionControllerLaws(t *testing.T) {
	c := lawCtl(t, AdaptiveAdmission{
		Enabled:    true,
		TargetP99:  500 * time.Millisecond,
		MinDecided: 4,
	}, AdmissionPolicy{MaxInFlight: 100})

	if got := c.policy(AdmissionPolicy{}); got.MaxInFlight != 100 || got.MinLikelihood != 0 {
		t.Fatalf("seed policy = %+v, want MaxInFlight=100 MinLikelihood=0", got)
	}

	// Epoch 1: within SLO, zero aborts — additive window growth, no shed.
	for i := 0; i < 10; i++ {
		c.observeFinal(true, 100*time.Millisecond)
	}
	c.step()
	if st := c.state(); st.MaxInFlight != 100+aimdStep || st.MinLikelihood != 0 {
		t.Fatalf("after healthy epoch: %+v", st)
	}

	// Epoch 2: p99 breaches the SLO — multiplicative contraction.
	for i := 0; i < 10; i++ {
		c.observeFinal(true, 5*time.Second)
	}
	c.step()
	want := (100 + aimdStep) * 7 / 10
	if st := c.state(); st.MaxInFlight != want {
		t.Fatalf("after SLO breach: MaxInFlight=%d, want %d", st.MaxInFlight, want)
	}

	// Epoch 3: high abort rate with a spread of priors — the shed fraction
	// rises and the likelihood bar lands at that quantile of the offered
	// load; the speculation floor rises too.
	for i := 0; i < 8; i++ {
		c.observeFinal(true, 100*time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		c.observeFinal(false, 100*time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		c.observePrior(float64(i) / 100)
	}
	c.step()
	st := c.state()
	if st.ShedFraction != 0.05 {
		t.Fatalf("shed fraction = %v, want 0.05", st.ShedFraction)
	}
	if st.MinLikelihood <= 0 || st.MinLikelihood > 0.15 {
		t.Fatalf("MinLikelihood = %v, want the ~5th percentile of uniform priors", st.MinLikelihood)
	}
	if st.SpecFloor != 0.10 {
		t.Fatalf("SpecFloor = %v, want 0.10", st.SpecFloor)
	}

	// Stall epoch: rejections but nothing decided — the window reopens
	// multiplicatively and the shed fraction backs off to zero.
	for i := 0; i < 20; i++ {
		c.observeReject()
	}
	c.step()
	st2 := c.state()
	if st2.MaxInFlight != st.MaxInFlight*2 {
		t.Fatalf("stalled epoch: MaxInFlight=%d, want %d", st2.MaxInFlight, st.MaxInFlight*2)
	}
	if st2.MinLikelihood != 0 || st2.ShedFraction != 0 {
		t.Fatalf("stalled epoch kept shedding: %+v", st2)
	}
	if st2.Epochs != 4 {
		t.Fatalf("epochs = %d, want 4", st2.Epochs)
	}

	// Thin epoch (below MinDecided): every knob holds.
	c.observeFinal(true, 10*time.Second)
	c.step()
	if st3 := c.state(); st3.MaxInFlight != st2.MaxInFlight || st3.SpecFloor != st2.SpecFloor {
		t.Fatalf("thin epoch moved knobs: %+v vs %+v", st3, st2)
	}
}

// adaptiveRun drives a contended blind-write workload through a DB with
// the adaptive controller enabled on a virtual-time cluster and returns
// the outcome stats plus the home region's final controller state.
func adaptiveRun(t *testing.T, seed int64) (Stats, AdmissionState) {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Topology:      regions.Three(),
		Seed:          seed,
		VirtualTime:   true,
		CommitTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		c.Quiesce(2 * time.Second)
	}()
	db, err := Open(Config{
		Cluster:   c,
		Admission: AdmissionPolicy{MaxInFlight: 24},
		Adaptive: AdaptiveAdmission{
			Enabled:    true,
			Epoch:      20 * time.Millisecond,
			TargetP99:  300 * time.Millisecond,
			AbortHigh:  0.10,
			MinDecided: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SeedBytes("hot", []byte("v0"))
	c.SeedBytes("cold", []byte("v0"))
	home := regions.California
	s, err := db.Session(home)
	if err != nil {
		t.Fatal(err)
	}
	clk := s.Clock()
	handles := make([]*Handle, 0, 1000)
	for i := 0; i < 1000; i++ {
		tx := s.Begin()
		// Mostly blind writes on one hot key — overlapping submissions
		// conflict on its version — with a cold-key minority so the offered
		// load has a likelihood spread for the shed quantile to cut.
		if i%5 == 4 {
			tx.Set("cold", []byte{byte(i)})
		} else {
			tx.Set("hot", []byte{byte(i)})
		}
		h, err := tx.Commit(CommitOptions{SpeculateAt: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		clk.Sleep(500 * time.Microsecond)
	}
	for _, h := range handles {
		h.Wait()
	}
	return db.Stats(), db.AdmissionState(home)
}

// TestAdaptiveAdmissionDeterminism: two identically-seeded virtual-time
// runs with the controller enabled must land on identical outcome counts
// and identical controller state — the feedback loop is part of the
// deterministic simulation, not an outside observer of it.
func TestAdaptiveAdmissionDeterminism(t *testing.T) {
	s1, a1 := adaptiveRun(t, 42)
	s2, a2 := adaptiveRun(t, 42)
	if s1 != s2 {
		t.Errorf("stats diverged across same-seed runs:\n  %+v\n  %+v", s1, s2)
	}
	if a1 != a2 {
		t.Errorf("controller state diverged across same-seed runs:\n  %+v\n  %+v", a1, a2)
	}
	if a1.Epochs == 0 {
		t.Error("controller never ticked")
	}
	if s1.Committed == 0 {
		t.Error("nothing committed")
	}
	if s1.Aborted == 0 {
		t.Error("contended blind writes produced no aborts; workload too gentle to exercise the controller")
	}
}
