package planet_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/txn"
	"planet/internal/workload"
)

// callbackLog records callback invocations for one transaction in order.
type callbackLog struct {
	mu    sync.Mutex
	names []string
}

func (l *callbackLog) add(name string) {
	l.mu.Lock()
	l.names = append(l.names, name)
	l.mu.Unlock()
}

func (l *callbackLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.names...)
}

// TestCallbackOrderingGuaranteeUnderLoad runs many concurrent transactions
// with every callback registered and asserts, per transaction, the
// documented ordering contract:
//
//	accept ≤ progress* ≤ speculative ≤ final ≤ apology
//
// and the exactly-once guarantees for accept, speculative, final, apology.
func TestCallbackOrderingGuaranteeUnderLoad(t *testing.T) {
	c, err := cluster.New(cluster.Config{TimeScale: 0.005, Seed: 55, CommitTimeout: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		c.Quiesce(5 * time.Second)
	}()
	db, err := planet.Open(planet.Config{Cluster: c})
	if err != nil {
		t.Fatal(err)
	}
	// A contended keyspace so a healthy mix of commits and aborts — and
	// therefore apologies — occurs.
	tmpl := workload.ReadModifyWrite{
		Keys: workload.Hotspot{Prefix: "ord-", HotKeys: 2, ColdKeys: 100, HotProb: 0.6},
	}
	tmpl.Seed(c)

	const n = 120
	var wg sync.WaitGroup
	logs := make([]*callbackLog, n)
	outcomes := make([]txn.Outcome, n)
	for i := 0; i < n; i++ {
		i := i
		region := c.Regions()[i%5]
		logs[i] = &callbackLog{}
		s, err := db.Session(region)
		if err != nil {
			t.Fatal(err)
		}
		tx := s.Begin()
		key := fmt.Sprintf("ord-hot-%06d", i%2)
		if _, err := tx.Read(key); err != nil {
			t.Fatal(err)
		}
		tx.Set(key, []byte{byte(i)})
		lg := logs[i]
		h, err := tx.Commit(planet.CommitOptions{
			SpeculateAt:   0.6,
			OnAccept:      func(planet.Progress) { lg.add("accept") },
			OnProgress:    func(planet.Progress) { lg.add("progress") },
			OnSpeculative: func(planet.Progress) { lg.add("speculative") },
			OnFinal:       func(txn.Outcome) { lg.add("final") },
			OnApology:     func(txn.Outcome) { lg.add("apology") },
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			outcomes[i] = h.Wait()
		}()
	}
	wg.Wait()

	sawApology := false
	for i, lg := range logs {
		names := lg.snapshot()
		counts := map[string]int{}
		// Ordering: accept must be first; once final is seen nothing but
		// the apology may follow.
		finalAt := -1
		for j, name := range names {
			counts[name]++
			switch name {
			case "accept":
				if j != 0 {
					t.Errorf("txn %d: accept at position %d: %v", i, j, names)
				}
			case "final":
				finalAt = j
			case "apology":
				if finalAt < 0 || j != finalAt+1 {
					t.Errorf("txn %d: apology not immediately after final: %v", i, names)
				}
				sawApology = true
			case "progress", "speculative":
				if finalAt >= 0 {
					t.Errorf("txn %d: %s after final: %v", i, name, names)
				}
			}
		}
		for _, once := range []string{"accept", "speculative", "final", "apology"} {
			if counts[once] > 1 {
				t.Errorf("txn %d: %s fired %d times: %v", i, once, counts[once], names)
			}
		}
		if counts["final"] != 1 {
			t.Errorf("txn %d: final fired %d times", i, counts["final"])
		}
		// Speculative must come before final and after accept.
		if counts["speculative"] == 1 {
			si := indexOf(names, "speculative")
			if si > finalAt || si == 0 {
				t.Errorf("txn %d: speculative at %d, final at %d: %v", i, si, finalAt, names)
			}
		}
		// Apology iff speculated and aborted.
		wantApology := outcomes[i].Speculated && !outcomes[i].Committed && !outcomes[i].Rejected
		if (counts["apology"] == 1) != wantApology {
			t.Errorf("txn %d: apology=%d, outcome %+v", i, counts["apology"], outcomes[i])
		}
	}
	if !sawApology {
		t.Log("note: no apologies occurred this run (contention too low)")
	}
}

func indexOf(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	return -1
}
