package planet

import (
	"sync"
)

// HealthPolicy configures the per-region health tracker. A region whose
// recent commit attempts keep timing out is probably partitioned from its
// quorum; speculating there would pile up guaranteed apologies, so the DB
// sheds speculation (forces SpeculateAt to zero) for sessions in degraded
// regions until the timeout rate recovers. The zero value disables health
// tracking.
type HealthPolicy struct {
	// Window is the sliding window of recent transaction outcomes
	// considered per region (default 50).
	Window int
	// MaxTimeoutRate marks a region degraded when the fraction of
	// timed-out outcomes in the window reaches this value. Zero disables
	// the tracker entirely.
	MaxTimeoutRate float64
	// MinSamples is the minimum number of outcomes in the window before a
	// region can be judged degraded (default 10), so one early timeout on
	// a cold region does not shed speculation.
	MinSamples int
}

// Defaults applied by Open when the policy is enabled.
const (
	defaultHealthWindow     = 50
	defaultHealthMinSamples = 10
)

// enabled reports whether the policy can degrade anything.
func (p HealthPolicy) enabled() bool { return p.MaxTimeoutRate > 0 }

// regionHealth is a fixed-size ring of recent outcome observations for one
// region: true marks a timeout. It keeps a running timeout count so the
// degraded check is O(1).
type regionHealth struct {
	policy HealthPolicy

	mu       sync.Mutex
	ring     []bool
	next     int
	filled   int
	timeouts int
}

// newRegionHealth builds a tracker for a normalized (non-zero) policy.
func newRegionHealth(policy HealthPolicy) *regionHealth {
	return &regionHealth{policy: policy, ring: make([]bool, policy.Window)}
}

// observe records one finished transaction's fate (nil-safe).
func (h *regionHealth) observe(timedOut bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.filled == len(h.ring) {
		// Evict the slot being overwritten from the running count.
		if h.ring[h.next] {
			h.timeouts--
		}
	} else {
		h.filled++
	}
	h.ring[h.next] = timedOut
	if timedOut {
		h.timeouts++
	}
	h.next = (h.next + 1) % len(h.ring)
	h.mu.Unlock()
}

// degraded reports whether the window's timeout rate crossed the policy
// threshold (nil-safe: a nil tracker is never degraded).
func (h *regionHealth) degraded() bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.filled < h.policy.MinSamples {
		return false
	}
	return float64(h.timeouts)/float64(h.filled) >= h.policy.MaxTimeoutRate
}

// rate returns the current timeout rate and sample count (tests, gauges).
func (h *regionHealth) rate() (float64, int) {
	if h == nil {
		return 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.filled == 0 {
		return 0, 0
	}
	return float64(h.timeouts) / float64(h.filled), h.filled
}
