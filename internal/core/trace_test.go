package planet_test

import (
	"strings"
	"testing"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/obs"
	"planet/internal/regions"
	"planet/internal/workload"
)

// TestTraceSpansFormCausalTree commits one fast-path transaction with
// tracing on and requires the recorded spans to stitch into a single causal
// tree rooted at the transaction's total span: coordinator-side stages
// parent the root, replica option-RPC legs parent the root, vote returns
// parent their option-RPC legs, and replica WAL appends parent the decide
// broadcast that triggered them.
func TestTraceSpansFormCausalTree(t *testing.T) {
	db := openTestDB(t, planet.Config{Trace: true}, cluster.Config{WAL: true})
	db.Cluster().SeedBytes("tr", []byte("v0"))
	s := session(t, db, regions.California)

	tx := s.Begin()
	tx.Set("tr", []byte("v1"))
	h, err := tx.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if o := h.Wait(); !o.Committed {
		t.Fatalf("outcome: %+v", o)
	}

	// Replica- and master-side spans ride spanReportMsg flushes that land
	// after the decision; poll until the tree is complete.
	var spans []obs.Span
	byStage := func(sps []obs.Span, st obs.Stage) []obs.Span {
		var out []obs.Span
		for _, sp := range sps {
			if sp.Stage == st {
				out = append(out, sp)
			}
		}
		return out
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans = db.Spans().Spans(h.ID())
		if len(byStage(spans, obs.StageReplicaWAL)) >= 1 &&
			len(byStage(spans, obs.StageOptionRPC)) >= 2 &&
			len(byStage(spans, obs.StageClientNotify)) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("span tree incomplete after 5s: %d spans %+v", len(spans), spans)
		}
		time.Sleep(10 * time.Millisecond)
	}

	roots := byStage(spans, obs.StageTotal)
	if len(roots) != 1 {
		t.Fatalf("got %d total spans, want 1", len(roots))
	}
	root := roots[0]
	if root.Parent != 0 {
		t.Errorf("root span has parent %d", root.Parent)
	}

	ids := make(map[uint64]obs.Span, len(spans))
	for _, sp := range spans {
		if sp.ID == 0 {
			t.Errorf("%s span has zero id", sp.Stage)
		}
		if _, dup := ids[sp.ID]; dup {
			t.Errorf("duplicate span id %d (%s)", sp.ID, sp.Stage)
		}
		ids[sp.ID] = sp
	}
	// Single tree: every non-root span's parent resolves, and walking
	// parents reaches the root.
	for _, sp := range spans {
		if sp.ID == root.ID {
			continue
		}
		cur, hops := sp, 0
		for cur.ID != root.ID {
			parent, ok := ids[cur.Parent]
			if !ok {
				t.Fatalf("%s span %d has dangling parent %d", sp.Stage, sp.ID, cur.Parent)
			}
			if hops++; hops > len(spans) {
				t.Fatalf("parent cycle at %s span %d", sp.Stage, sp.ID)
			}
			cur = parent
		}
	}
	// Stage-specific parentage.
	for _, sp := range byStage(spans, obs.StageSubmit) {
		if sp.Parent != root.ID {
			t.Errorf("submit span parents %d, want root", sp.Parent)
		}
	}
	for _, sp := range byStage(spans, obs.StageVoteReturn) {
		if p := ids[sp.Parent]; p.Stage != obs.StageOptionRPC {
			t.Errorf("vote_return parents %s, want option_rpc", p.Stage)
		}
	}
	for _, sp := range byStage(spans, obs.StageReplicaWAL) {
		if p := ids[sp.Parent]; p.Stage != obs.StageDecideBroadcast {
			t.Errorf("replica_wal parents %s, want decide_broadcast", p.Stage)
		}
	}
	for _, sp := range byStage(spans, obs.StageDecideBroadcast) {
		if sp.Parent != root.ID {
			t.Errorf("decide_broadcast parents %d, want root", sp.Parent)
		}
		if sp.Region == "" {
			t.Error("decide_broadcast span missing region")
		}
	}
	// The cross-process claim in miniature: option-RPC legs recorded at
	// distinct replicas all stitched under the one coordinator root.
	legs := byStage(spans, obs.StageOptionRPC)
	legRegions := make(map[string]bool)
	for _, sp := range legs {
		if sp.Parent != root.ID {
			t.Errorf("option_rpc parents %d, want root", sp.Parent)
		}
		legRegions[sp.Region] = true
	}
	if len(legRegions) < 2 {
		t.Errorf("option-RPC legs from %d regions, want >= 2", len(legRegions))
	}
}

// TestTraceDisabledIsFree checks the disabled path: no store, no spans, and
// handles carry no span ids.
func TestTraceDisabledIsFree(t *testing.T) {
	db := openTestDB(t, planet.Config{}, cluster.Config{})
	db.Cluster().SeedBytes("tn", []byte("v0"))
	s := session(t, db, regions.California)
	tx := s.Begin()
	tx.Set("tn", []byte("v1"))
	h, err := tx.Commit(planet.CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h.Wait()
	if db.Spans() != nil || db.Attribution() != nil {
		t.Error("tracing artifacts present with Trace off")
	}
}

// TestAttributionDeterminism runs the same seeded workload twice on the
// virtual clock with tracing on and requires bit-identical attribution
// tables: under discrete-event time the whole span pipeline — network legs,
// WAL appends, flush arrival order, EWMA folds — must be a pure function of
// the seed.
func TestAttributionDeterminism(t *testing.T) {
	run := func() string {
		c, err := cluster.New(cluster.Config{
			TimeScale:     0.05,
			Seed:          1789,
			VirtualTime:   true,
			ParallelTime:  true,
			WAL:           true,
			CommitTimeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			c.Close()
			c.Quiesce(5 * time.Second)
		}()
		db, err := planet.Open(planet.Config{Cluster: c, Trace: true, AttributionFeed: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := (workload.Closed{
			Options: workload.Options{
				DB:       db,
				Template: workload.ReadModifyWrite{Keys: workload.Hotspot{Prefix: "ad-", HotKeys: 2, ColdKeys: 500, HotProb: 0.3}},
				Seed:     4242,
			},
			Clients: 8, PerClient: 10,
		}).Run(); err != nil {
			t.Fatal(err)
		}
		// Drain in-flight span flushes before snapshotting.
		c.Quiesce(5 * time.Second)
		return db.Attribution().Snapshot().Table()
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Errorf("same-seed runs produced different attribution tables:\n--- run 1\n%s--- run 2\n%s", t1, t2)
	}
	if !strings.Contains(t1, "dominant variance:") {
		t.Errorf("table missing dominant line:\n%s", t1)
	}
	for _, stage := range []string{"option_rpc", "vote_return", "decide_broadcast", "replica_wal", "total"} {
		if !strings.Contains(t1, stage) {
			t.Errorf("table missing stage %s:\n%s", stage, t1)
		}
	}
}
