// Quickstart: stand up a five-datacenter PLANET deployment in-process,
// write a record through a staged transaction, and watch its commit
// progress stream in through callbacks.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/regions"
	"planet/internal/txn"
)

func main() {
	// A five-region cluster (California, Virginia, Ireland, Singapore,
	// Tokyo) over an emulated WAN. TimeScale 0.05 runs 150ms links as
	// 7.5ms so the demo finishes quickly; latencies printed below are in
	// emulator time.
	c, err := cluster.New(cluster.Config{TimeScale: 0.05, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	db, err := planet.Open(planet.Config{Cluster: c})
	if err != nil {
		log.Fatal(err)
	}

	// Seed a record and open a client session homed in California.
	c.SeedBytes("greeting", []byte("hello"))
	s, err := db.Session(regions.California)
	if err != nil {
		log.Fatal(err)
	}

	// Read-modify-write through the staged commit API.
	tx := s.Begin()
	old, err := tx.Read("greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %q from the local replica\n", old)
	tx.Set("greeting", []byte("hello, planet"))

	h, err := tx.Commit(planet.CommitOptions{
		SpeculateAt: 0.95,
		OnAccept: func(p planet.Progress) {
			fmt.Printf("%-12s likelihood=%.3f after %v\n", "accepted", p.Likelihood, p.Elapsed.Round(time.Millisecond))
		},
		OnProgress: func(p planet.Progress) {
			fmt.Printf("%-12s likelihood=%.3f votes=%d/%d after %v\n",
				p.Stage, p.Likelihood, p.VotesReceived, p.VotesExpected, p.Elapsed.Round(time.Millisecond))
		},
		OnSpeculative: func(p planet.Progress) {
			fmt.Printf("%-12s likelihood=%.3f — safe to respond to the user now\n", "SPECULATIVE", p.Likelihood)
		},
		OnFinal: func(o txn.Outcome) {
			fmt.Printf("%-12s %v\n", "FINAL", o)
		},
		OnApology: func(o txn.Outcome) {
			fmt.Printf("%-12s we owe the user an apology: %v\n", "APOLOGY", o.Err)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	outcome := h.Wait()
	if !outcome.Committed {
		log.Fatalf("commit failed: %v", outcome.Err)
	}

	// The write is now durable across all five datacenters.
	c.Quiesce(5 * time.Second)
	for _, r := range c.Regions() {
		rs, err := db.Session(r)
		if err != nil {
			log.Fatal(err)
		}
		v, ver, err := rs.ReadBytes("greeting")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replica %-14s: %q (version %d)\n", r, v, ver)
	}
}
