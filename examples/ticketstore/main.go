// Ticketstore: the use case PLANET's introduction motivates. A concert has
// a fixed number of tickets replicated across five datacenters; buyers
// worldwide race for them. Purchases are commutative bounded decrements,
// so concurrent sales commit without conflicting until stock runs out —
// and the integrity bound guarantees the venue is never oversold.
//
// Buyers are shown an optimistic confirmation as soon as the commit
// likelihood crosses 95% (speculative commit); the rare wrong guess gets
// the guaranteed apology, which this demo surfaces as a refund email.
//
// Run with:
//
//	go run ./examples/ticketstore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/simnet"
	"planet/internal/txn"
)

const (
	tickets = 120
	buyers  = 40
	// Each buyer attempts this many purchases (1-2 seats each).
	attemptsPerBuyer = 5
)

func main() {
	c, err := cluster.New(cluster.Config{TimeScale: 0.02, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	db, err := planet.Open(planet.Config{Cluster: c})
	if err != nil {
		log.Fatal(err)
	}
	// The stock record: bound [0, tickets] enforces "never oversell".
	c.SeedInt("concert", tickets, 0, tickets)

	var (
		confirmed  atomic.Int64 // optimistic confirmations shown
		sold       atomic.Int64 // seats actually committed
		soldOut    atomic.Int64 // buyers turned away
		apologies  atomic.Int64 // wrong optimistic confirmations
		perceived  atomic.Int64 // summed perceived latency (ns)
		finalSum   atomic.Int64 // summed final latency (ns)
		wg         sync.WaitGroup
		regionList = c.Regions()
	)

	for i := 0; i < buyers; i++ {
		region := regionList[i%len(regionList)]
		rng := rand.New(rand.NewSource(int64(100 + i)))
		wg.Add(1)
		go func(buyer int, region simnet.Region) {
			defer wg.Done()
			s, err := db.Session(region)
			if err != nil {
				log.Print(err)
				return
			}
			for a := 0; a < attemptsPerBuyer; a++ {
				seats := int64(1 + rng.Intn(2))
				start := time.Now()
				tx := s.Begin()
				tx.Add("concert", -seats)
				var wasConfirmed atomic.Bool
				h, err := tx.Commit(planet.CommitOptions{
					SpeculateAt: 0.95,
					OnSpeculative: func(p planet.Progress) {
						// Show the user "tickets secured!" now.
						wasConfirmed.Store(true)
						confirmed.Add(1)
						perceived.Add(int64(time.Since(start)))
					},
					OnApology: func(o txn.Outcome) {
						apologies.Add(1)
						fmt.Printf("  → apology email to buyer %d (%s): your %d seat(s) fell through\n",
							buyer, region, seats)
					},
				})
				if err != nil {
					log.Print(err)
					return
				}
				o := h.Wait()
				finalSum.Add(int64(o.Duration()))
				if !wasConfirmed.Load() {
					perceived.Add(int64(o.Duration()))
				}
				if o.Committed {
					sold.Add(seats)
				} else {
					soldOut.Add(1)
				}
			}
		}(i, region)
	}
	wg.Wait()
	c.Quiesce(5 * time.Second)

	attempts := int64(buyers * attemptsPerBuyer)
	fmt.Printf("\n--- box office report ---\n")
	fmt.Printf("initial stock:          %d\n", tickets)
	fmt.Printf("purchase attempts:      %d\n", attempts)
	fmt.Printf("seats sold:             %d\n", sold.Load())
	fmt.Printf("attempts denied:        %d\n", soldOut.Load())
	fmt.Printf("optimistic confirms:    %d (apologies: %d)\n", confirmed.Load(), apologies.Load())
	fmt.Printf("mean perceived latency: %v\n", time.Duration(perceived.Load()/attempts).Round(time.Millisecond))
	fmt.Printf("mean final latency:     %v\n", time.Duration(finalSum.Load()/attempts).Round(time.Millisecond))

	// The invariant the bound protects: remaining = initial - sold, >= 0,
	// identical at every replica.
	for _, r := range regionList {
		s, err := db.Session(r)
		if err != nil {
			log.Fatal(err)
		}
		remaining, _, err := s.ReadInt("concert")
		if err != nil {
			log.Fatal(err)
		}
		if remaining < 0 {
			log.Fatalf("OVERSOLD at %s: %d", r, remaining)
		}
		if remaining+sold.Load() != tickets {
			log.Fatalf("stock mismatch at %s: %d remaining + %d sold != %d",
				r, remaining, sold.Load(), tickets)
		}
		fmt.Printf("replica %-14s: %d seats remaining ✓\n", r, remaining)
	}
}
