// Geodashboard: a text-mode rendering of what PLANET's progress callbacks
// make possible in a UI. One transaction is launched from each of the five
// datacenters against a shared record set, and every protocol event is
// printed as a timeline row: the stage, the live commit likelihood, and
// which replicas have voted. This is the information a traditional blocking
// commit API hides until the very end.
//
// Run with:
//
//	go run ./examples/geodashboard
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/simnet"
	"planet/internal/txn"
)

// event is one dashboard row.
type event struct {
	at     time.Duration
	origin simnet.Region
	line   string
}

func main() {
	c, err := cluster.New(cluster.Config{TimeScale: 0.05, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	db, err := planet.Open(planet.Config{Cluster: c})
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 8; i++ {
		c.SeedInt(fmt.Sprintf("counter-%d", i), 0, -1<<40, 1<<40)
	}

	var (
		mu     sync.Mutex
		events []event
		start  = time.Now()
		wg     sync.WaitGroup
	)
	record := func(origin simnet.Region, line string) {
		mu.Lock()
		events = append(events, event{time.Since(start), origin, line})
		mu.Unlock()
	}

	for i, origin := range c.Regions() {
		s, err := db.Session(origin)
		if err != nil {
			log.Fatal(err)
		}
		tx := s.Begin()
		tx.Add(fmt.Sprintf("counter-%d", i), 1)
		tx.Add(fmt.Sprintf("counter-%d", i+1), -1)
		h, err := tx.Commit(planet.CommitOptions{
			SpeculateAt: 0.95,
			OnAccept: func(p planet.Progress) {
				record(origin, fmt.Sprintf("accepted              likelihood=%.3f", p.Likelihood))
			},
			OnProgress: func(p planet.Progress) {
				record(origin, fmt.Sprintf("%-10s %s likelihood=%.3f",
					p.Stage, voteBar(p), p.Likelihood))
			},
			OnSpeculative: func(p planet.Progress) {
				record(origin, fmt.Sprintf("SPECULATIVE ✦         likelihood=%.3f", p.Likelihood))
			},
			OnFinal: func(o txn.Outcome) {
				verdict := "COMMITTED ✓"
				if !o.Committed {
					verdict = fmt.Sprintf("ABORTED ✗ (%v)", o.Err)
				}
				record(origin, fmt.Sprintf("%s after %v", verdict, o.Duration().Round(time.Millisecond)))
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Wait()
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })
	fmt.Printf("%-10s %-14s %s\n", "t", "origin", "event")
	for _, e := range events {
		fmt.Printf("%-10v %-14s %s\n", e.at.Round(100*time.Microsecond), e.origin, e.line)
	}
}

// voteBar renders vote progress as a compact gauge like [####......].
func voteBar(p planet.Progress) string {
	if p.VotesExpected == 0 {
		return strings.Repeat(".", 10)
	}
	filled := p.VotesReceived * 10 / p.VotesExpected
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", 10-filled) + "]"
}
