// HTTP gateway example: embed a PLANET deployment behind the net/http
// gateway and drive it exactly as an external service would — submit a
// staged transaction over JSON, poll its likelihood while it runs, and
// await the final geo-replicated decision.
//
// Run with:
//
//	go run ./examples/httpgateway
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/httpapi"
	"planet/internal/regions"
)

func main() {
	// Deployment + gateway for the Ireland region.
	c, err := cluster.New(cluster.Config{TimeScale: 0.05, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	db, err := planet.Open(planet.Config{Cluster: c})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := db.Session(regions.Ireland)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.NewServer(db, sess))
	defer ts.Close()
	fmt.Printf("gateway for %s listening at %s\n\n", regions.Ireland, ts.URL)

	c.SeedInt("votes", 0, 0, 1<<40)
	cl := &httpapi.Client{Base: ts.URL}

	// Submit without waiting, then watch the stage machine over HTTP.
	id, err := cl.Submit(httpapi.SubmitRequest{
		Ops:         []httpapi.Op{{Kind: "add", Key: "votes", Delta: 1}},
		SpeculateAt: 0.95,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s\n", id)

	for i := 0; i < 50; i++ {
		st, err := cl.Status(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  poll %2d: stage=%-11s likelihood=%.3f votes=%d/%d done=%v\n",
			i, st.Stage, st.Likelihood, st.VotesSeen, st.VotesOverall, st.Done)
		if st.Done {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The blocking convenience path.
	st, err := cl.SubmitAndWait(httpapi.SubmitRequest{
		Ops: []httpapi.Op{{Kind: "add", Key: "votes", Delta: 1}},
	}, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond txn: committed=%v in %.1fms (WAN-scaled)\n", st.Committed, st.DurationMs)

	c.Quiesce(5 * time.Second)
	r, err := cl.QuorumRead("votes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quorum read: votes=%d (version %d)\n", r.Int, r.Version)

	stats, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("db stats: %v\n", stats)
}
