// Flashsale: admission control under a flash crowd. A single product page
// goes viral and an open-loop burst of read-modify-write transactions
// hammers its record from every region. Without admission control, almost
// all of that work is wasted on conflict aborts discovered only after a
// wide-area round trip. With likelihood-based admission, PLANET's predictor
// notices the record is hot and rejects doomed transactions instantly,
// giving users immediate feedback and keeping the commit rate of admitted
// work high.
//
// Run with:
//
//	go run ./examples/flashsale
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"planet/internal/cluster"
	planet "planet/internal/core"
	"planet/internal/metrics"
)

const (
	burst     = 400
	arrivalHz = 1500.0 // offered load, transactions/second (emulator time)
)

func main() {
	for _, mode := range []struct {
		name      string
		admission planet.AdmissionPolicy
	}{
		{"without admission control", planet.AdmissionPolicy{}},
		{"with admission control", planet.AdmissionPolicy{MinLikelihood: 0.40, ProbeFraction: 0.05}},
	} {
		fmt.Printf("=== flash sale %s ===\n", mode.name)
		runSale(mode.admission)
		fmt.Println()
	}
}

func runSale(admission planet.AdmissionPolicy) {
	c, err := cluster.New(cluster.Config{TimeScale: 0.02, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	db, err := planet.Open(planet.Config{Cluster: c, Admission: admission})
	if err != nil {
		log.Fatal(err)
	}
	// The viral product: a single record everyone updates physically
	// (cart metadata, counters, "last buyer" field — not a commutative
	// quantity, so writes genuinely conflict).
	c.SeedBytes("product:viral", []byte("flash-sale-page"))

	var (
		wg                           sync.WaitGroup
		mu                           sync.Mutex
		committed, aborted, rejected int
		feedback                     = metrics.NewHistogram() // time until the user learns anything definitive
	)
	rng := rand.New(rand.NewSource(99))
	regionList := c.Regions()
	next := time.Now()
	for i := 0; i < burst; i++ {
		next = next.Add(time.Duration(rng.ExpFloat64() / arrivalHz * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		s, err := db.Session(regionList[i%len(regionList)])
		if err != nil {
			log.Fatal(err)
		}
		tx := s.Begin()
		if _, err := tx.Read("product:viral"); err != nil {
			log.Fatal(err)
		}
		tx.Set("product:viral", []byte(fmt.Sprintf("buyer-%d", i)))
		start := time.Now()
		h, err := tx.Commit(planet.CommitOptions{})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := h.Wait()
			mu.Lock()
			defer mu.Unlock()
			feedback.Observe(time.Since(start))
			switch {
			case o.Rejected:
				rejected++
			case o.Committed:
				committed++
			default:
				aborted++
			}
		}()
	}
	wg.Wait()

	s := feedback.Summarize()
	fmt.Printf("offered: %d  committed: %d  aborted-after-roundtrip: %d  rejected-instantly: %d\n",
		burst, committed, aborted, rejected)
	decided := committed + aborted
	if decided > 0 {
		fmt.Printf("commit rate of admitted work: %.1f%%\n", 100*float64(committed)/float64(decided))
	}
	fmt.Printf("time-to-feedback: p50=%v p95=%v\n",
		s.P50.Round(time.Millisecond), s.P95.Round(time.Millisecond))
}
