module planet

go 1.22
