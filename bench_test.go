// Repository-level benchmarks: one per table/figure of the PLANET
// evaluation (see DESIGN.md). Each benchmark runs the corresponding
// experiment in quick mode through the same code path as cmd/planetbench
// and reports its headline metrics; `go test -bench . -benchmem` therefore
// regenerates the whole evaluation in miniature. Run cmd/planetbench for
// full-size tables.
package main_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"planet/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration and
// publishes its metrics through the benchmark reporter.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	run, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := run(experiments.Config{Quick: true, Seed: int64(100 + i)})
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		last = res
	}
	// Surface a few stable headline metrics (full tables via planetbench).
	published := 0
	for _, k := range last.MetricKeys() {
		if published >= 6 {
			break
		}
		b.ReportMetric(last.Metrics[k], k)
		published++
	}
}

func BenchmarkT1RTTMatrix(b *testing.B)         { runExperiment(b, "t1") }
func BenchmarkF1CommitCDF(b *testing.B)         { runExperiment(b, "f1") }
func BenchmarkF2Calibration(b *testing.B)       { runExperiment(b, "f2") }
func BenchmarkF3Trajectory(b *testing.B)        { runExperiment(b, "f3") }
func BenchmarkF4Speculation(b *testing.B)       { runExperiment(b, "f4") }
func BenchmarkF5AdmissionLoad(b *testing.B)     { runExperiment(b, "f5") }
func BenchmarkF6Contention(b *testing.B)        { runExperiment(b, "f6") }
func BenchmarkF7Stages(b *testing.B)            { runExperiment(b, "f7") }
func BenchmarkF8Scale(b *testing.B)             { runExperiment(b, "f8") }
func BenchmarkA1FastVsClassic(b *testing.B)     { runExperiment(b, "a1") }
func BenchmarkA2PredictorAblation(b *testing.B) { runExperiment(b, "a2") }
func BenchmarkA3Commutative(b *testing.B)       { runExperiment(b, "a3") }
func BenchmarkE1LossSweep(b *testing.B)         { runExperiment(b, "e1") }
func BenchmarkE2JitterSweep(b *testing.B)       { runExperiment(b, "e2") }
func BenchmarkE3AttributionFeed(b *testing.B)   { runExperiment(b, "e3") }
func BenchmarkF9OpenLoopSurge(b *testing.B)     { runExperiment(b, "f9") }

// TestExperimentsRunClean is the smoke test that every registered
// experiment completes without error in quick mode.
func TestExperimentsRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long; skipped with -short")
	}
	for _, e := range experiments.Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(experiments.Config{Quick: true, Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Metrics) == 0 {
				t.Errorf("%s produced no metrics", e.ID)
			}
			if res.Text == "" {
				t.Errorf("%s produced no table", e.ID)
			}
		})
	}
}

// TestVirtualTimeDeterminism runs the speculation-threshold sweep twice
// with the same seed and requires bit-identical metrics. Under the virtual
// clock the whole evaluation — WAN delays, loss, pacing, timeouts — is a
// pure function of the seed, so any divergence between the two runs is a
// nondeterminism bug (an unseeded RNG, map-order iteration feeding floats,
// or a wall-clock read leaking into the emulator).
func TestVirtualTimeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long; skipped with -short")
	}
	var runs [2]map[string]float64
	for i := range runs {
		res, err := experiments.F4Speculation(experiments.Config{Quick: true, Seed: 7})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		runs[i] = res.Metrics
	}
	if len(runs[0]) == 0 {
		t.Fatal("f4 produced no metrics")
	}
	if len(runs[0]) != len(runs[1]) {
		t.Errorf("metric count differs: %d vs %d", len(runs[0]), len(runs[1]))
	}
	for k, v0 := range runs[0] {
		v1, ok := runs[1][k]
		if !ok {
			t.Errorf("metric %q missing from second run", k)
			continue
		}
		if math.Float64bits(v0) != math.Float64bits(v1) {
			t.Errorf("metric %q differs across same-seed runs: %v vs %v", k, v0, v1)
		}
	}
}

// TestEvaluationShapes asserts the qualitative claims the paper makes —
// who wins, in which regime — rather than absolute numbers.
func TestEvaluationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long; skipped with -short")
	}
	t.Run("f4-speculation-tradeoff", func(t *testing.T) {
		t.Parallel()
		res, err := experiments.F4Speculation(experiments.Config{Quick: true, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		// Perceived latency is far below final latency at every threshold.
		for _, th := range []string{"th_050", "th_090", "th_099"} {
			if m[th+"_perceived_p50_ms"] >= m[th+"_final_p50_ms"] {
				t.Errorf("%s: perceived %.1fms not below final %.1fms",
					th, m[th+"_perceived_p50_ms"], m[th+"_final_p50_ms"])
			}
		}
		// Raising the threshold must not increase the apology rate
		// (compare the extremes; middle points are noisy at quick sizes).
		if m["th_099_apology_rate"] > m["th_050_apology_rate"]+0.02 {
			t.Errorf("apologies grew with threshold: %.3f @0.99 vs %.3f @0.50",
				m["th_099_apology_rate"], m["th_050_apology_rate"])
		}
	})

	t.Run("f5-admission-protects-commit-rate", func(t *testing.T) {
		t.Parallel()
		res, err := experiments.F5AdmissionLoad(experiments.Config{Quick: true, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		// At the highest offered load, admitted transactions commit at a
		// higher rate than under no admission control.
		noAdm := m["no_admission_rate_2400_commit_rate"]
		adm := m["admission_rate_2400_commit_rate"]
		if adm <= noAdm {
			t.Errorf("admission commit rate %.3f not above no-admission %.3f", adm, noAdm)
		}
		if m["admission_rate_2400_reject_frac"] == 0 {
			t.Error("admission control rejected nothing under overload")
		}
	})

	t.Run("a3-commutativity-beats-physical-writes", func(t *testing.T) {
		t.Parallel()
		res, err := experiments.A3Commutative(experiments.Config{Quick: true, Seed: 29})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		if m["commutative_buy_commit_rate"] <= m["physical_rmw_commit_rate"] {
			t.Errorf("commutative %.3f not above physical %.3f",
				m["commutative_buy_commit_rate"], m["physical_rmw_commit_rate"])
		}
		if m["scarce_remaining"] < 0 {
			t.Errorf("oversold: remaining stock %v < 0", m["scarce_remaining"])
		}
		if m["scarce_sold"] != m["scarce_committed"] {
			t.Errorf("sold %v != committed %v", m["scarce_sold"], m["scarce_committed"])
		}
	})

	t.Run("a2-conflict-term-improves-calibration", func(t *testing.T) {
		t.Parallel()
		res, err := experiments.A2PredictorAblation(experiments.Config{Quick: true, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		if m["full_model_mae"] >= m["latency_only_mae"] {
			t.Errorf("full model MAE %.4f not below latency-only %.4f",
				m["full_model_mae"], m["latency_only_mae"])
		}
		if m["mc_max_abs_diff"] > 0.08 {
			t.Errorf("analytic and Monte-Carlo disagree by %.4f", m["mc_max_abs_diff"])
		}
	})

	t.Run("e3-attribution-feed-improves-calibration", func(t *testing.T) {
		t.Parallel()
		res, err := experiments.E3AttributionFeed(experiments.Config{Quick: true, Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		// Under jitter and a tight commit budget, the stage-statistics feed
		// must tighten predictions: lower calibration error than the
		// feed-less baseline.
		if m["attribution_feed_mae"] >= m["no_feed_mae"] {
			t.Errorf("feed MAE %.4f not below no-feed MAE %.4f",
				m["attribution_feed_mae"], m["no_feed_mae"])
		}
		// The tight budget must actually bite, or the comparison is vacuous.
		if m["no_feed_commit_rate"] > 0.995 {
			t.Errorf("no-feed commit rate %.3f too high: timeouts never engaged",
				m["no_feed_commit_rate"])
		}
		// Injected WAN jitter lives on the propose legs: attribution must
		// finger the option RPC stage as the dominant variance source.
		if !strings.Contains(res.Text, "dominant variance stage under jitter: option_rpc") {
			t.Errorf("attribution did not rank option_rpc dominant:\n%s", res.Text)
		}
	})

	t.Run("f1-fast-beats-classic-far-from-master", func(t *testing.T) {
		t.Parallel()
		res, err := experiments.F1CommitCDF(experiments.Config{Quick: true, Seed: 37})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		// Classic (master in Virginia) must win at the master's region and
		// lose badly from Singapore, the farthest client.
		if m["classic_us-east_p50_ms"] >= m["fast_us-east_p50_ms"] {
			t.Errorf("classic at master %.0fms not below fast %.0fms",
				m["classic_us-east_p50_ms"], m["fast_us-east_p50_ms"])
		}
		if m["classic_ap-southeast_p50_ms"] <= m["fast_ap-southeast_p50_ms"] {
			t.Errorf("classic from singapore %.0fms not above fast %.0fms",
				m["classic_ap-southeast_p50_ms"], m["fast_ap-southeast_p50_ms"])
		}
	})

	t.Run("f9-adaptive-beats-static-under-surge", func(t *testing.T) {
		t.Parallel()
		res, err := experiments.F9OpenLoopSurge(experiments.Config{Quick: true, Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		// Through the surge and the replica outage, the controller must
		// deliver more committed work than the static policy at equal or
		// lower tail latency.
		if m["adaptive_goodput"] <= m["static_goodput"] {
			t.Errorf("adaptive goodput %.1f/s not above static %.1f/s",
				m["adaptive_goodput"], m["static_goodput"])
		}
		if m["adaptive_p99_final_ms"] > m["static_p99_final_ms"] {
			t.Errorf("adaptive p99 %.0fms above static %.0fms",
				m["adaptive_p99_final_ms"], m["static_p99_final_ms"])
		}
		// The controller must actually have run: epochs ticked and the
		// window moved off the static seed.
		if m["adaptive_epochs"] == 0 {
			t.Error("controller never ticked an epoch")
		}
		if m["adaptive_final_max_inflight"] == 120 {
			t.Error("controller window never moved off the static seed")
		}
		// Both arms run the identical arrival schedule.
		if m["adaptive_injected"] != m["static_injected"] {
			t.Errorf("arrival schedules diverged: %v vs %v injected",
				m["adaptive_injected"], m["static_injected"])
		}
	})
}

// Example of a metric dump, exercised by go vet's Example checker.
func Example() {
	res := experiments.Result{
		Name:    "demo",
		Metrics: map[string]float64{"b": 2, "a": 1},
	}
	fmt.Print(res.FormatMetrics())
	// Output:
	// a                                              1.0000
	// b                                              2.0000
}
